//! Differential tests: the incremental and sharded Algorithm 1 engines
//! against the reference full rescan.
//!
//! Masters — identical except for [`SchedulerConfig`] — are driven
//! through the same randomized event sequences (admissions, retargets,
//! pulls, completions, read-cancels, job evictions, spb drift, health
//! flaps, master restarts). After every step they must agree on every
//! observable: per-block targets, pull results (bind order included),
//! pending depth and bytes, and all must pass the full invariant audit.
//! A second generator sweeps shard counts (1 / 2 / 8, with and without
//! the cascade ceiling) so the K-way merge and the cross-shard
//! trajectory lookups face the same scrutiny. This is the executable
//! form of the equivalence argument in `crates/core/src/sched/engine.rs`.

use dyrs::master::{BlockRequest, JobHint, Master};
use dyrs::types::EvictionMode;
use dyrs::{MigrationOrder, MigrationPolicy, SchedEngine, SchedulerConfig};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use proptest::prelude::*;
use simkit::audit::{Audit, AuditReport};
use simkit::{Rng, SimDuration, SimTime};

const MB: u64 = 1 << 20;
const BW: f64 = 140.0 * MB as f64;
const NODES: u32 = 6;

fn sched_cfg(engine: SchedEngine, shards: usize, ceiling: f64) -> SchedulerConfig {
    SchedulerConfig {
        engine,
        shards,
        cascade_ceiling: ceiling,
        ..SchedulerConfig::default()
    }
}

fn master_with(cfg: SchedulerConfig, order: MigrationOrder, detector: bool) -> Master {
    let mut m = Master::new(MigrationPolicy::Dyrs, NODES as usize, BW, Rng::new(7));
    m.set_order(order);
    m.set_sched_config(cfg);
    if detector {
        m.configure_detector(dyrs::FailureDetectorConfig::default());
    }
    for n in 0..NODES {
        m.on_heartbeat_at(NodeId(n), 1.0 / BW, 0, SimTime::ZERO);
    }
    m
}

/// Every observable both engines must agree on, plus a clean audit.
fn assert_agree(inc: &Master, refr: &Master, step: usize) {
    assert_eq!(inc.pending_len(), refr.pending_len(), "step {step}: depth");
    assert_eq!(
        inc.pending_bytes(),
        refr.pending_bytes(),
        "step {step}: bytes"
    );
    let blocks: Vec<BlockId> = inc.pending_block_ids().collect();
    let blocks_r: Vec<BlockId> = refr.pending_block_ids().collect();
    assert_eq!(blocks, blocks_r, "step {step}: pending block sets");
    for b in blocks {
        assert_eq!(
            inc.target_of(b),
            refr.target_of(b),
            "step {step}: target of {b:?} diverged"
        );
    }
    for (label, m) in [("incremental", inc), ("reference", refr)] {
        let mut report = AuditReport::new();
        m.audit(&mut report);
        assert!(
            report.is_clean(),
            "step {step}: {label} audit: {:?}",
            report.violations()
        );
    }
}

fn order_of(sel: u8) -> MigrationOrder {
    match sel % 3 {
        0 => MigrationOrder::Fifo,
        1 => MigrationOrder::SmallestJobFirst,
        _ => MigrationOrder::EarliestDeadlineFirst,
    }
}

proptest! {
    /// Random event sequences through both engines: identical targets,
    /// identical bind order, identical audit results, at every step.
    #[test]
    fn engines_are_decision_identical(
        order_sel in 0u8..3,
        detector in prop::bool::ANY,
        ops in proptest::collection::vec(
            (0u8..9, 0u32..NODES, 0u64..64, 1u64..40),
            1..120,
        ),
    ) {
        let order = order_of(order_sel);
        let mut inc = master_with(sched_cfg(SchedEngine::Incremental, 1, 0.0), order, detector);
        let mut refr = master_with(sched_cfg(SchedEngine::Reference, 1, 0.0), order, detector);
        let mut clock = SimTime::ZERO;
        let mut next_block = 0u64;
        let mut next_job = 0u64;
        // Bound-but-unfinished migrations, identical across the pair by
        // induction (pull results are asserted equal), plus the liveness
        // view: a dead slave never reports a completion, and its bound
        // work is forfeit (respawned by the detector when one is on).
        let mut bound: Vec<(NodeId, BlockId)> = Vec::new();
        let mut live = vec![true; NODES as usize];
        for (step, &(op, node_sel, pick, dt)) in ops.iter().enumerate() {
            clock += SimDuration::from_secs(dt);
            let node = NodeId(node_sel);
            match op {
                // Admit 1–3 fresh blocks under one job, with hints so the
                // SJF/EDF order keys are exercised.
                0 => {
                    let job = JobId(next_job);
                    next_job += 1;
                    let reqs: Vec<BlockRequest> = (0..(pick % 3) + 1)
                        .map(|k| {
                            let b = next_block;
                            next_block += 1;
                            let r0 = (node_sel + k as u32) % NODES;
                            BlockRequest {
                                block: BlockId(b),
                                bytes: (1 + (pick + k) % 8) * 64 * MB,
                                replicas: vec![
                                    NodeId(r0),
                                    NodeId((r0 + 1 + (pick as u32 % 2)) % NODES),
                                ],
                            }
                        })
                        .collect();
                    let hint = JobHint {
                        expected_launch: clock + SimDuration::from_secs(pick % 30),
                        total_bytes: (1 + pick % 10) * 256 * MB,
                    };
                    let a = inc.request_migration_hinted(
                        job, reqs.clone(), EvictionMode::Implicit, hint);
                    let b = refr.request_migration_hinted(
                        job, reqs, EvictionMode::Implicit, hint);
                    prop_assert_eq!(a, b, "step {}: admit outcome", step);
                }
                1 => {
                    inc.retarget();
                    refr.retarget();
                }
                // A pull must bind the same migrations in the same order.
                2 => {
                    let space = (pick as usize % 4) + 1;
                    let a = inc.on_slave_pull(node, space);
                    let b = refr.on_slave_pull(node, space);
                    prop_assert_eq!(&a, &b, "step {}: pull diverged", step);
                    prop_assert!(a.len() <= space, "step {step}: over-popped");
                    for mig in a {
                        bound.push((node, mig.block));
                    }
                }
                3 => {
                    let eligible: Vec<usize> = (0..bound.len())
                        .filter(|&i| live[bound[i].0.index()])
                        .collect();
                    if let Some(&i) = eligible.get(pick as usize % eligible.len().max(1)) {
                        let (n, b) = bound.swap_remove(i);
                        inc.on_migration_complete(n, b);
                        refr.on_migration_complete(n, b);
                    }
                }
                // Read-cancel a random (possibly absent) block.
                4 => {
                    let b = BlockId(pick % next_block.max(1));
                    prop_assert_eq!(
                        inc.on_block_read(b),
                        refr.on_block_read(b),
                        "step {}: read-cancel", step
                    );
                }
                5 => {
                    let j = JobId(pick % next_job.max(1));
                    prop_assert_eq!(
                        inc.evict_job(j),
                        refr.evict_job(j),
                        "step {}: evict nodes", step
                    );
                }
                // spb drift + backlog drift through a heartbeat.
                6 => {
                    let spb = (1.0 + (pick % 16) as f64) / BW;
                    let queued = (pick % 5) * 128 * MB;
                    inc.on_heartbeat_at(node, spb, queued, clock);
                    refr.on_heartbeat_at(node, spb, queued, clock);
                }
                7 => {
                    let up = pick % 2 == 0;
                    live[node.index()] = up;
                    if !up {
                        bound.retain(|&(n, _)| n != node);
                    }
                    inc.set_node_up(node, up);
                    refr.set_node_up(node, up);
                    if detector {
                        let a = inc.check_health(clock);
                        let b = refr.check_health(clock);
                        prop_assert_eq!(a.stuck, b.stuck, "step {}: health", step);
                    }
                }
                // Master restart: both drop soft state (rare-ish op; the
                // sequence keeps running against the reset pair).
                _ => {
                    inc.restart();
                    refr.restart();
                    bound.clear();
                }
            }
            assert_agree(&inc, &refr, step);
        }
        // Final drain: retarget + pull everything bindable, comparing the
        // complete bind order, not just a prefix.
        for round in 0..64 {
            inc.retarget();
            refr.retarget();
            let mut any = false;
            for n in 0..NODES {
                let a = inc.on_slave_pull(NodeId(n), 8);
                let b = refr.on_slave_pull(NodeId(n), 8);
                prop_assert_eq!(&a, &b, "drain round {} node {}", round, n);
                any |= !a.is_empty();
            }
            assert_agree(&inc, &refr, usize::MAX);
            if !any {
                break;
            }
        }
    }

    /// Steady state sanity: with nothing dirty the incremental pass must
    /// skip everything, and a single node's drift must not rescore the
    /// whole queue — while staying decision-identical throughout.
    #[test]
    fn steady_state_skips_and_stays_identical(
        spbs in proptest::collection::vec(1.0f64..20.0, NODES as usize),
        blocks in 1usize..40,
    ) {
        let mut inc = master_with(
            sched_cfg(SchedEngine::Incremental, 1, 0.0), MigrationOrder::Fifo, false);
        let mut refr = master_with(
            sched_cfg(SchedEngine::Reference, 1, 0.0), MigrationOrder::Fifo, false);
        for (n, s) in spbs.iter().enumerate() {
            inc.on_heartbeat_at(NodeId(n as u32), s / BW, 0, SimTime::ZERO);
            refr.on_heartbeat_at(NodeId(n as u32), s / BW, 0, SimTime::ZERO);
        }
        for i in 0..blocks as u64 {
            let reqs = vec![BlockRequest {
                block: BlockId(i),
                bytes: 256 * MB,
                replicas: vec![NodeId(i as u32 % NODES), NodeId((i as u32 + 1) % NODES)],
            }];
            inc.request_migration(JobId(i), reqs.clone(), EvictionMode::Implicit);
            refr.request_migration(JobId(i), reqs, EvictionMode::Implicit);
        }
        let first = inc.retarget();
        refr.retarget();
        prop_assert_eq!(first.rescored, blocks as u64, "first pass rescans all");
        assert_agree(&inc, &refr, 0);
        // Nothing changed: the incremental pass must do no scoring work.
        let steady = inc.retarget();
        refr.retarget();
        prop_assert_eq!(steady.rescored, 0);
        prop_assert_eq!(steady.skipped, blocks as u64);
        assert_agree(&inc, &refr, 1);
        // One node drifts: only its replica holders (plus any cascade)
        // may be rescored — never provably-unaffected entries.
        inc.on_heartbeat_at(NodeId(0), 30.0 / BW, 64 * MB, SimTime::from_secs(1));
        refr.on_heartbeat_at(NodeId(0), 30.0 / BW, 64 * MB, SimTime::from_secs(1));
        let drift = inc.retarget();
        refr.retarget();
        prop_assert!(drift.rescored >= 1 || blocks == 0);
        assert_agree(&inc, &refr, 2);
    }
}

/// An FNV-1a digest of a drain: every (node, block, target-tier) triple
/// pulled, in bind order. Two stores with identical pending state and
/// identical decisions must replay identical digests.
fn drain_digest(m: &mut Master) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for _ in 0..64 {
        m.retarget();
        let mut any = false;
        for n in 0..NODES {
            for mig in m.on_slave_pull(NodeId(n), 8) {
                fold(n as u64);
                fold(mig.block.0);
                fold(mig.dest_tier as u64);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shard-count sweep: the sharded engine at 1, 2, and 8 shards (the
    /// last with a tight cascade ceiling, so the fallback rescan also
    /// runs) against the incremental monolith, through random
    /// admit / retarget / pull / complete / drift / evict sequences.
    /// Identical targets and pulls at every step, identical drain
    /// digests at the end.
    #[test]
    fn shard_counts_are_decision_identical(
        order_sel in 0u8..3,
        ops in proptest::collection::vec(
            (0u8..6, 0u32..NODES, 0u64..64, 1u64..40),
            1..80,
        ),
    ) {
        let order = order_of(order_sel);
        let mut fleet = [
            master_with(sched_cfg(SchedEngine::Incremental, 1, 0.0), order, false),
            master_with(sched_cfg(SchedEngine::Sharded, 1, 0.0), order, false),
            master_with(sched_cfg(SchedEngine::Sharded, 2, 0.0), order, false),
            master_with(sched_cfg(SchedEngine::Sharded, 8, 0.1), order, false),
        ];
        let mut clock = SimTime::ZERO;
        let mut next_block = 0u64;
        let mut next_job = 0u64;
        let mut bound: Vec<(NodeId, BlockId)> = Vec::new();
        for (step, &(op, node_sel, pick, dt)) in ops.iter().enumerate() {
            clock += SimDuration::from_secs(dt);
            let node = NodeId(node_sel);
            match op {
                0 => {
                    let job = JobId(next_job);
                    next_job += 1;
                    // Block ids jump in 64-id strides so admissions truly
                    // spread across range shards.
                    let reqs: Vec<BlockRequest> = (0..(pick % 3) + 1)
                        .map(|k| {
                            let b = next_block * 64 + k;
                            next_block += 1;
                            let r0 = (node_sel + k as u32) % NODES;
                            BlockRequest {
                                block: BlockId(b),
                                bytes: (1 + (pick + k) % 8) * 64 * MB,
                                replicas: vec![
                                    NodeId(r0),
                                    NodeId((r0 + 1 + (pick as u32 % 2)) % NODES),
                                ],
                            }
                        })
                        .collect();
                    let hint = JobHint {
                        expected_launch: clock + SimDuration::from_secs(pick % 30),
                        total_bytes: (1 + pick % 10) * 256 * MB,
                    };
                    let first = fleet[0].request_migration_hinted(
                        job, reqs.clone(), EvictionMode::Implicit, hint);
                    for m in &mut fleet[1..] {
                        let got = m.request_migration_hinted(
                            job, reqs.clone(), EvictionMode::Implicit, hint);
                        prop_assert_eq!(&first, &got, "step {}: admit outcome", step);
                    }
                }
                1 => {
                    for m in &mut fleet {
                        m.retarget();
                    }
                }
                2 => {
                    let space = (pick as usize % 4) + 1;
                    let first = fleet[0].on_slave_pull(node, space);
                    for m in &mut fleet[1..] {
                        let got = m.on_slave_pull(node, space);
                        prop_assert_eq!(&first, &got, "step {}: pull diverged", step);
                    }
                    for mig in first {
                        bound.push((node, mig.block));
                    }
                }
                3 => {
                    if !bound.is_empty() {
                        let (n, b) = bound.swap_remove(pick as usize % bound.len());
                        for m in &mut fleet {
                            m.on_migration_complete(n, b);
                        }
                    }
                }
                4 => {
                    let spb = (1.0 + (pick % 16) as f64) / BW;
                    let queued = (pick % 5) * 128 * MB;
                    for m in &mut fleet {
                        m.on_heartbeat_at(node, spb, queued, clock);
                    }
                }
                _ => {
                    let j = JobId(pick % next_job.max(1));
                    let first = fleet[0].evict_job(j);
                    for m in &mut fleet[1..] {
                        let got = m.evict_job(j);
                        prop_assert_eq!(&first, &got, "step {}: evict nodes", step);
                    }
                }
            }
            let (oracle, rest) = fleet.split_first().expect("fleet non-empty");
            for m in rest {
                assert_agree(m, oracle, step);
            }
        }
        // Per-shard depths must always re-add to the global depth.
        for m in &fleet {
            prop_assert_eq!(
                m.sched_shard_depths().iter().sum::<usize>(),
                m.pending_len()
            );
        }
        // Drain everything: the complete bind order, digested, must be
        // identical across every shard count.
        let digests: Vec<u64> = fleet.iter_mut().map(drain_digest).collect();
        for d in &digests[1..] {
            prop_assert_eq!(digests[0], *d, "drain digests diverged");
        }
    }
}

#[test]
fn cascade_ceiling_falls_back_without_changing_decisions() {
    // Arm an absurdly low ceiling and dirty every node: the sharded pass
    // must bail to the reference rescan (ceiling_hits = 1) and still
    // produce exactly the reference decisions; un-armed (0.0) it must
    // never bail.
    let run = |ceiling: f64| -> (Master, u64) {
        let mut m = master_with(
            sched_cfg(SchedEngine::Sharded, 4, ceiling),
            MigrationOrder::Fifo,
            false,
        );
        for i in 0..200u64 {
            let reqs = vec![BlockRequest {
                block: BlockId(i * 64),
                bytes: 256 * MB,
                replicas: vec![NodeId(i as u32 % NODES), NodeId((i as u32 + 1) % NODES)],
            }];
            m.request_migration(JobId(i), reqs, EvictionMode::Implicit);
        }
        m.retarget();
        // every node drifts → the visit plan covers the whole queue
        for n in 0..NODES {
            m.on_heartbeat_at(
                NodeId(n),
                (2.0 + n as f64) / BW,
                128 * MB,
                SimTime::from_secs(1),
            );
        }
        let stats = m.retarget();
        (m, stats.ceiling_hits)
    };
    let (mut armed, hits_armed) = run(0.05);
    let (mut unarmed, hits_unarmed) = run(0.0);
    assert_eq!(hits_armed, 1, "the tight ceiling must trigger the rescan");
    assert_eq!(hits_unarmed, 0, "ceiling 0.0 means the check is off");
    let blocks: Vec<BlockId> = armed.pending_block_ids().collect();
    for b in blocks {
        assert_eq!(armed.target_of(b), unarmed.target_of(b), "{b:?}");
    }
    assert_eq!(drain_digest(&mut armed), drain_digest(&mut unarmed));
}
