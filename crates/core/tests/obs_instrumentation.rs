//! Observability instrumentation tests for the master/slave state
//! machines (compiled only with the `obs` feature, which the workspace
//! build enables by default through `dyrs-sim`).

#![cfg(feature = "obs")]

use dyrs::master::{BlockRequest, Master};
use dyrs::obs::{cause, SpanState};
use dyrs::types::{EvictionMode, JobRef, Migration, MigrationId};
use dyrs::{DyrsConfig, MigrationPolicy, ObsHandle, Slave};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use simkit::{Rng, SimDuration, SimTime};

const MB: u64 = 1 << 20;
const BLOCK: u64 = 256 * MB;
const BW: f64 = 140.0 * MB as f64;

fn calibrated_slave(obs: ObsHandle) -> Slave {
    let mut s = Slave::new(NodeId(0), DyrsConfig::default(), BW, 4 * BLOCK, BLOCK);
    s.attach_obs(obs);
    s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
    s
}

fn mig(i: u64, jobs: &[u64]) -> Migration {
    Migration {
        id: MigrationId(i),
        block: BlockId(i),
        bytes: BLOCK,
        jobs: jobs
            .iter()
            .map(|&j| JobRef {
                job: JobId(j),
                eviction: EvictionMode::Implicit,
            })
            .collect(),
        replicas: vec![NodeId(0)],
        attempt: 0,
        dest_tier: 0,
    }
}

/// Paper §IV-A: when a migration runs past its estimate, the heartbeat
/// refresh raises the estimate. The `node.estimate_overdue_secs` gauge is
/// sampled *before* each refresh, so it shows the error the refresh then
/// corrects — positive on the late heartbeat, back to zero right after.
#[test]
fn estimate_overdue_gauge_reflects_in_progress_refresh() {
    let obs = ObsHandle::new();
    let mut s = calibrated_slave(obs.clone());
    s.on_bind(vec![mig(1, &[1])]);
    assert!(s.try_start(SimTime::ZERO).is_some());

    // ~1.83 s estimated for 256 MB at 140 MB/s; heartbeat at t=60 s is
    // far past it.
    let est_before = s.estimator().estimate(BLOCK).as_secs_f64();
    obs.set_now(SimTime::from_secs(60));
    let hb = s.on_heartbeat(SimTime::from_secs(60));

    let report = obs.take_report();
    let series = report
        .gauge("node.estimate_overdue_secs", 0)
        .expect("gauge recorded at heartbeat");
    let sample = series
        .value_at(SimTime::from_secs(60))
        .expect("sample at heartbeat time");
    let expected = 60.0 - est_before;
    assert!(
        (sample - expected).abs() < 1e-6,
        "overdue sample {sample} should be elapsed minus pre-refresh estimate {expected}"
    );

    // The refresh fired (EWMA-blended toward the elapsed lower bound, not
    // snapped to it): each subsequent heartbeat sees a strictly smaller
    // overdue as the estimate converges up toward the elapsed time.
    assert!(hb.secs_per_byte > 1.0 / BW, "refresh raised the estimate");
    let mut samples = vec![sample];
    for i in 1..=20u64 {
        let t = SimTime::from_micros(60 * 1_000_000 + i);
        obs.set_now(t);
        s.on_heartbeat(t);
        let report = obs.take_report();
        let series = report
            .gauge("node.estimate_overdue_secs", 0)
            .expect("gauge recorded each heartbeat");
        samples.push(series.value_at(t).expect("sample"));
    }
    assert!(
        samples.windows(2).all(|w| w[1] < w[0]),
        "overdue must shrink every refresh: {samples:?}"
    );
    assert!(
        samples.last().expect("nonempty") < &(0.1 * samples[0]),
        "refresh should erase most of the error: {samples:?}"
    );
}

/// The realized-vs-estimated error gauge is sampled at completion, before
/// the completion itself teaches the estimator.
#[test]
fn estimate_error_gauge_sampled_at_completion() {
    let obs = ObsHandle::new();
    let mut s = calibrated_slave(obs.clone());
    s.on_bind(vec![mig(1, &[1])]);
    assert!(s.try_start(SimTime::ZERO).is_some());
    let est = s.estimator().estimate(BLOCK).as_secs_f64();
    obs.set_now(SimTime::from_secs(20));
    s.on_migration_complete(SimTime::from_secs(20)); // much slower than estimated
    let report = obs.take_report();
    let series = report
        .gauge("node.estimate_error_secs", 0)
        .expect("error gauge recorded");
    let sample = series
        .value_at(SimTime::from_secs(20))
        .expect("sample at completion");
    assert!(
        (sample - (20.0 - est)).abs() < 1e-6,
        "signed error {sample} should be realized minus estimated {}",
        20.0 - est
    );
}

/// Full delayed-binding lifecycle through the master and slave: pending →
/// targeted → bound(heartbeat-pull) → started → finished, with block and
/// size stamped on every event.
#[test]
fn master_slave_lifecycle_spans() {
    let obs = ObsHandle::new();
    let mut m = Master::new(MigrationPolicy::Dyrs, 2, BW, Rng::new(1));
    m.attach_obs(obs.clone());
    let mut s = calibrated_slave(obs.clone());

    m.on_heartbeat(NodeId(0), 1.0 / BW, 0);
    m.on_heartbeat(NodeId(1), 1.0, 0); // slow
    m.request_migration(
        JobId(9),
        vec![BlockRequest {
            block: BlockId(5),
            bytes: BLOCK,
            replicas: vec![NodeId(0), NodeId(1)],
        }],
        EvictionMode::Implicit,
    );
    m.retarget();
    obs.set_now(SimTime::from_secs(1));
    let bound = m.on_slave_pull(NodeId(0), 4);
    assert_eq!(bound.len(), 1);
    let id = bound[0].id.0;
    s.on_bind(bound);
    assert!(s.try_start(SimTime::from_secs(1)).is_some());
    obs.set_now(SimTime::from_secs(3));
    s.on_migration_complete(SimTime::from_secs(3));

    let report = obs.take_report();
    let spans = report.spans();
    let span = &spans[&id];
    let states: Vec<SpanState> = span.iter().map(|e| e.state).collect();
    assert_eq!(
        states,
        vec![
            SpanState::Pending,
            SpanState::Targeted,
            SpanState::Bound,
            SpanState::Started,
            SpanState::Finished,
        ]
    );
    assert!(span.iter().all(|e| e.block == 5 && e.bytes == BLOCK));
    assert_eq!(span[0].job, Some(9));
    assert_eq!(span[2].cause, cause::HEARTBEAT_PULL);
    assert_eq!(span[4].node, Some(0));
    assert_eq!(report.counter("span.finished"), 1);
    let hist = report
        .histogram("migration.duration_secs")
        .expect("duration histogram");
    assert_eq!(hist.total(), 1);
}

/// An Algorithm 1 placement is explainable from the provenance record
/// alone: the winner is the candidate with the minimum estimated finish
/// time, and the recorded scores match the paper's formula
/// `finish[n] = spb[n]·queued_bytes[n] + spb[n]·bytes`.
#[test]
fn provenance_explains_algorithm1_placement() {
    let obs = ObsHandle::new();
    let mut m = Master::new(MigrationPolicy::Dyrs, 3, BW, Rng::new(1));
    m.attach_obs(obs.clone());
    let slow_spb = 10.0 / BW;
    let fast_spb = 1.0 / BW;
    m.on_heartbeat(NodeId(0), slow_spb, 0);
    m.on_heartbeat(NodeId(1), fast_spb, 2 * BLOCK); // fast but backlogged
    m.on_heartbeat(NodeId(2), fast_spb, 0);
    m.request_migration(
        JobId(1),
        vec![BlockRequest {
            block: BlockId(1),
            bytes: BLOCK,
            replicas: vec![NodeId(0), NodeId(1), NodeId(2)],
        }],
        EvictionMode::Implicit,
    );
    m.retarget();

    let report = obs.take_report();
    assert_eq!(report.provenance.len(), 1);
    let rec = &report.provenance[0];
    assert_eq!(rec.migration, 0);
    assert_eq!(rec.block, 1);
    assert_eq!(rec.candidates.len(), 3);
    // Scores reproduce the paper's formula from heartbeat state alone.
    for c in &rec.candidates {
        let (spb, queued) = match c.node {
            0 => (slow_spb, 0.0),
            1 => (fast_spb, (2 * BLOCK) as f64),
            2 => (fast_spb, 0.0),
            n => panic!("unexpected candidate node {n}"),
        };
        let expected = spb * queued + spb * BLOCK as f64;
        assert!(
            (c.est_finish_secs - expected).abs() < 1e-9,
            "node {}: recorded {} vs formula {}",
            c.node,
            c.est_finish_secs,
            expected
        );
    }
    // The winner is the argmin of the recorded scores — node 2 here
    // (node 0 is slow, node 1 pays for its backlog).
    let best = rec
        .candidates
        .iter()
        .min_by(|a, b| a.est_finish_secs.total_cmp(&b.est_finish_secs))
        .expect("nonempty candidates");
    assert_eq!(best.node, 2);
    assert_eq!(rec.winner, Some(2));
    assert_eq!(m.target_of(BlockId(1)), Some(NodeId(2)));
}

/// Master-side terminal transitions: a read before binding aborts with
/// `missed-read`; a master restart aborts every pending migration.
#[test]
fn master_abort_causes() {
    let obs = ObsHandle::new();
    let mut m = Master::new(MigrationPolicy::Dyrs, 2, BW, Rng::new(1));
    m.attach_obs(obs.clone());
    let req = |i: u64| BlockRequest {
        block: BlockId(i),
        bytes: BLOCK,
        replicas: vec![NodeId(0)],
    };
    m.request_migration(JobId(1), vec![req(1), req(2)], EvictionMode::Implicit);
    m.on_block_read(BlockId(1));
    m.restart();

    let report = obs.take_report();
    let spans = report.spans();
    assert_eq!(spans.len(), 2);
    let terminals: Vec<&str> = spans
        .values()
        .map(|s| {
            let last = s.last().expect("nonempty span");
            assert!(last.state.is_terminal());
            last.cause
        })
        .collect();
    assert_eq!(terminals, vec![cause::MISSED_READ, cause::MASTER_RESTART]);
}

/// Slave-side terminals: an unreferenced dequeue aborts; a completion
/// whose readers all went away is `evicted` (landed, never served).
#[test]
fn slave_abort_and_evict_causes() {
    let obs = ObsHandle::new();
    let mut s = calibrated_slave(obs.clone());
    // Migration 1 starts, then its only reader reads the block from disk
    // mid-flight → evicted-on-completion.
    s.on_bind(vec![mig(1, &[1]), mig(2, &[2])]);
    assert!(s.try_start(SimTime::ZERO).is_some());
    s.on_read(BlockId(1), JobId(1));
    // Migration 2 is still queued when its job is evicted → aborted.
    s.evict_job(JobId(2));
    obs.set_now(SimTime::from_secs(2));
    let done = s.on_migration_complete(SimTime::from_secs(2));
    assert!(done.evicted_immediately);

    let report = obs.take_report();
    let spans = report.spans();
    let one = spans[&1].last().expect("span 1");
    assert_eq!(one.state, SpanState::Evicted);
    assert_eq!(one.cause, cause::UNREFERENCED);
    let two = spans[&2].last().expect("span 2");
    assert_eq!(two.state, SpanState::Aborted);
    assert_eq!(two.cause, cause::JOB_EVICTED);
    assert_eq!(report.counter("span.evicted"), 1);
    assert_eq!(report.counter("span.aborted"), 1);
}
