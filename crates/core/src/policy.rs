//! Migration policies: DYRS and the paper's comparison points (§V-A),
//! plus the migration-ordering disciplines the paper leaves as future
//! work (§III: "we plan to explore how alternative policies ... can
//! improve performance"; §III-B: "More sophisticated scheduling between
//! applications can be implemented at the master").

use serde::{Deserialize, Serialize};

/// Order in which the master considers pending migrations — both for the
/// Algorithm 1 targeting pass and for bind-on-pull responses.
///
/// The paper ships FIFO and explicitly defers alternatives to future
/// work; this crate implements two natural ones so the trade-off can be
/// measured (see `dyrs-experiments::policies`):
///
/// * [`MigrationOrder::Fifo`] — arrival order (the paper's DYRS);
/// * [`MigrationOrder::SmallestJobFirst`] — blocks of small jobs first.
///   Small jobs have the least lead-time slack per byte, and most jobs in
///   production traces are small (85% under 64 MB in SWIM), so finishing
///   them first maximizes the *number* of fully-migrated jobs;
/// * [`MigrationOrder::EarliestDeadlineFirst`] — blocks whose job will
///   start reading soonest come first, directly maximizing the chance a
///   block is in memory by its expected read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MigrationOrder {
    /// First-in-first-out (the paper's published policy).
    #[default]
    Fifo,
    /// Prioritize blocks belonging to the job with the least total input.
    SmallestJobFirst,
    /// Prioritize blocks of the job with the earliest expected launch.
    EarliestDeadlineFirst,
}

impl MigrationOrder {
    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            MigrationOrder::Fifo => "FIFO",
            MigrationOrder::SmallestJobFirst => "SJF",
            MigrationOrder::EarliestDeadlineFirst => "EDF",
        }
    }

    /// All implemented orders.
    pub fn all() -> [MigrationOrder; 3] {
        [
            MigrationOrder::Fifo,
            MigrationOrder::SmallestJobFirst,
            MigrationOrder::EarliestDeadlineFirst,
        ]
    }
}

/// Which migration scheme the cluster runs. One enum drives both the
/// master's binding behaviour and the simulator's setup, so every
/// experiment can sweep configurations uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationPolicy {
    /// Plain HDFS: no migration at all; cold reads come from disk.
    Disabled,
    /// `HDFS-Inputs-in-RAM`: every input block is pinned in memory before
    /// the workload starts (the paper's vmtouch setup) — the upper bound
    /// on migration speedup.
    InstantRam,
    /// Ignem (ICDCS'18): binds every block to a *random* replica
    /// immediately at job submission. Bandwidth-oblivious; the paper shows
    /// it can be slower than plain HDFS under heterogeneity.
    Ignem,
    /// Delayed binding without finish-time targeting: a slave with queue
    /// space gets any pending block that has a replica on it (FIFO).
    /// The "naive load balancing scheme" of Fig. 10.
    Naive,
    /// Full DYRS: delayed binding plus the Algorithm 1 targeting pass.
    Dyrs,
}

impl MigrationPolicy {
    /// True if the policy migrates data at all.
    pub fn migrates(self) -> bool {
        !matches!(self, MigrationPolicy::Disabled)
    }

    /// True if migrations are bound lazily on slave pulls (DYRS and the
    /// naive baseline) rather than at request time.
    pub fn delayed_binding(self) -> bool {
        matches!(self, MigrationPolicy::Dyrs | MigrationPolicy::Naive)
    }

    /// True if the Algorithm 1 targeting pass governs which slave may take
    /// a pending block.
    pub fn uses_targeting(self) -> bool {
        matches!(self, MigrationPolicy::Dyrs)
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MigrationPolicy::Disabled => "HDFS",
            MigrationPolicy::InstantRam => "HDFS-Inputs-in-RAM",
            MigrationPolicy::Ignem => "Ignem",
            MigrationPolicy::Naive => "Naive",
            MigrationPolicy::Dyrs => "DYRS",
        }
    }

    /// The four configurations the paper's evaluation compares (§V-A).
    pub fn paper_configs() -> [MigrationPolicy; 4] {
        [
            MigrationPolicy::Disabled,
            MigrationPolicy::InstantRam,
            MigrationPolicy::Ignem,
            MigrationPolicy::Dyrs,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!MigrationPolicy::Disabled.migrates());
        assert!(MigrationPolicy::InstantRam.migrates());
        assert!(MigrationPolicy::Ignem.migrates());
        assert!(!MigrationPolicy::Ignem.delayed_binding());
        assert!(MigrationPolicy::Naive.delayed_binding());
        assert!(!MigrationPolicy::Naive.uses_targeting());
        assert!(MigrationPolicy::Dyrs.delayed_binding());
        assert!(MigrationPolicy::Dyrs.uses_targeting());
    }

    #[test]
    fn migration_orders() {
        assert_eq!(MigrationOrder::default(), MigrationOrder::Fifo);
        assert_eq!(MigrationOrder::all().len(), 3);
        assert_eq!(MigrationOrder::SmallestJobFirst.name(), "SJF");
        assert_eq!(MigrationOrder::EarliestDeadlineFirst.name(), "EDF");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(MigrationPolicy::Disabled.name(), "HDFS");
        assert_eq!(MigrationPolicy::Dyrs.name(), "DYRS");
        assert_eq!(MigrationPolicy::InstantRam.name(), "HDFS-Inputs-in-RAM");
    }

    #[test]
    fn paper_configs_are_the_four() {
        let c = MigrationPolicy::paper_configs();
        assert_eq!(c.len(), 4);
        assert!(c.contains(&MigrationPolicy::Ignem));
    }
}
