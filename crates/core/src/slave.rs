//! The DYRS slave (paper §III-A1, §III-B, §IV).
//!
//! Runs inside each DataNode. It keeps a **short FIFO local queue** of
//! bound migrations — deep enough that the disk never idles while the
//! slave waits for the next heartbeat, as shallow as possible so binding
//! stays late (§III-A1) — executes migrations **strictly one at a time**
//! to avoid seek thrashing (§III-B), estimates its per-byte migration cost
//! with an EWMA refreshed mid-migration (§IV-A), and manages the memory
//! buffer with per-block job reference lists (§III-C3).
//!
//! The slave is a reactive state machine: the caller (the simulator's
//! event loop) invokes `try_start` after anything that could unblock work
//! and applies the returned actions to the hardware model.

use crate::config::DyrsConfig;
use crate::estimator::MigrationEstimator;
use crate::refs::ReferenceLists;
use crate::types::{EvictionMode, JobRef, Migration};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_obs::{cause, ObsHandle};
use dyrs_tiers::{TierId, TierPolicy, TierPolicyKind, TierResident, TierStore};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A migration the slave has started on its disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartedMigration {
    /// The block being copied.
    pub block: BlockId,
    /// Its size in bytes.
    pub bytes: u64,
}

/// A finished migration, reported back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedMigration {
    /// The block now buffered in memory.
    pub block: BlockId,
    /// Its size.
    pub bytes: u64,
    /// How long the copy took (the simulated `mlock` duration).
    pub duration: SimDuration,
    /// True if the block was evicted immediately on completion because
    /// every interested job already read it from disk mid-migration (or,
    /// for a middle-tier destination, the tier filled up mid-flight).
    pub evicted_immediately: bool,
    /// Buffer tier the block landed in (0 = memory; Algorithm 1's chosen
    /// `dest_tier`, possibly first-fitted further down the stack).
    /// Meaningless when `evicted_immediately`.
    pub tier: u8,
}

/// A block evicted from the buffer, with its size for unpinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Evicted block.
    pub block: BlockId,
    /// Bytes released.
    pub bytes: u64,
    /// Where the copy went: `Some(tier)` when a lower buffer tier had
    /// room and kept it (demotion), `None` when it was dropped back to
    /// disk-only — always `None` on the legacy 2-tier stack.
    pub demoted_to: Option<u8>,
}

/// What the slave tells the master each heartbeat (§III-D).
///
/// This is a wire payload ([`dyrs-net`'s] `Message::Heartbeat` carries
/// it): scalar fields only, so its encoding is trivially byte-stable —
/// any roll-up added later must use `BTreeMap`/sorted collections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatReport {
    /// Estimated migration cost, seconds per byte.
    pub secs_per_byte: f64,
    /// Bytes bound to this slave but not yet migrated (queue + active).
    pub queued_bytes: u64,
    /// Free slots in the local queue (how much the slave can pull).
    pub queue_space: usize,
}

/// The migration cost (seconds per byte) an uncalibrated slave
/// advertises: finite but prohibitive, so Algorithm 1 never targets a
/// node whose actual conditions are still unknown.
pub const UNCALIBRATED_SECS_PER_BYTE: f64 = 1.0;

/// Counters for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaveStats {
    /// Migrations completed into memory.
    pub completed: u64,
    /// Bytes migrated into memory.
    pub bytes_migrated: u64,
    /// Queued migrations cancelled because the block was read first.
    pub missed_reads: u64,
    /// Blocks evicted from the buffer.
    pub evictions: u64,
    /// Times `try_start` stalled because the buffer was full.
    pub memory_stalls: u64,
}

struct Active {
    migration: Migration,
    started: SimTime,
}

/// What [`Slave::revoke`] found bound for the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Revoked {
    /// A queued (unstarted) entry was removed.
    Queued,
    /// An in-flight migration was cancelled; the caller must cancel its
    /// disk stream.
    Active,
    /// Nothing was bound for the block (stale revocation).
    NotBound,
}

/// The DYRS slave state machine for one node.
///
/// ```
/// use dyrs::slave::Slave;
/// use dyrs::types::{EvictionMode, JobRef, Migration, MigrationId};
/// use dyrs::DyrsConfig;
/// use dyrs_cluster::NodeId;
/// use dyrs_dfs::{BlockId, JobId};
/// use simkit::{SimDuration, SimTime};
///
/// const MB: u64 = 1 << 20;
/// let bw = 140.0 * MB as f64;
/// let mut slave = Slave::new(NodeId(0), DyrsConfig::default(), bw, 8 * 256 * MB, 256 * MB);
///
/// // the startup probe measures the disk before any work is accepted
/// assert_eq!(slave.queue_space(), 0);
/// slave.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / bw));
/// assert!(slave.queue_space() > 0);
///
/// // bind one migration, run it, and the block lands in the buffer
/// slave.on_bind(vec![Migration {
///     id: MigrationId(0),
///     block: BlockId(9),
///     bytes: 256 * MB,
///     jobs: vec![JobRef { job: JobId(1), eviction: EvictionMode::Implicit }],
///     replicas: vec![NodeId(0)],
///     attempt: 0,
///     dest_tier: 0,
/// }]);
/// let started = slave.try_start(SimTime::ZERO).unwrap();
/// assert_eq!(started.block, BlockId(9));
/// let done = slave.on_migration_complete(SimTime::from_secs(2));
/// assert!(slave.has_buffered(BlockId(9)));
///
/// // implicit eviction: the buffered copy is dropped as soon as the job reads it
/// let evicted = slave.on_read(BlockId(9), JobId(1));
/// assert_eq!(evicted.len(), 1);
/// assert_eq!(slave.buffered_bytes(), 0);
/// # let _ = done;
/// ```
pub struct Slave {
    /// Node this slave runs on.
    pub node: NodeId,
    config: DyrsConfig,
    /// Best-case disk bandwidth (for queue-depth sizing).
    disk_bw: f64,
    /// Reference block size for queue-depth sizing.
    reference_block: u64,
    queue: VecDeque<Migration>,
    /// In-flight migrations (length ≤ `config.max_concurrent_migrations`;
    /// exactly one under the paper's serialized default, §III-B).
    active: Vec<Active>,
    estimator: MigrationEstimator,
    memory: TierStore,
    /// Up/down-tier decision seam (demote-on-pressure, promote-on-read).
    policy: TierPolicy,
    refs: ReferenceLists,
    /// block → bytes pinned for it.
    buffered: BTreeMap<BlockId, u64>,
    /// Jobs that opted into implicit eviction.
    implicit_jobs: BTreeSet<JobId>,
    /// False until the startup probe read has measured the disk. An
    /// uncalibrated slave reports zero queue space so binding decisions
    /// never rely on the optimistic idle-disk prior (a cold slow node
    /// would otherwise accept migrations it takes tens of seconds to run —
    /// and binding is final, §III-A).
    calibrated: bool,
    stats: SlaveStats,
    /// Lifecycle span + gauge recorder; disconnected unless the driver
    /// attached one.
    obs: ObsHandle,
}

impl Slave {
    /// A slave on `node` with the given buffer capacity and disk speed.
    pub fn new(
        node: NodeId,
        config: DyrsConfig,
        disk_bw: f64,
        mem_capacity: u64,
        reference_block: u64,
    ) -> Self {
        Self::new_tiered(
            node,
            config,
            disk_bw,
            &[mem_capacity],
            reference_block,
            TierPolicy::new(TierPolicyKind::Baseline, simkit::Rng::new(0)),
        )
    }

    /// A slave over an explicit buffer-tier stack (`buffer_capacities[0]`
    /// = memory, then NVMe/SSD/... fastest first) with an up/down-tier
    /// policy. [`Slave::new`] is the memory-only special case.
    pub fn new_tiered(
        node: NodeId,
        config: DyrsConfig,
        disk_bw: f64,
        buffer_capacities: &[u64],
        reference_block: u64,
        policy: TierPolicy,
    ) -> Self {
        let estimator = MigrationEstimator::new(disk_bw, config.ewma_alpha);
        Slave {
            node,
            config,
            disk_bw,
            reference_block,
            queue: VecDeque::new(),
            active: Vec::new(),
            estimator,
            memory: TierStore::new(buffer_capacities),
            policy,
            refs: ReferenceLists::new(),
            buffered: BTreeMap::new(),
            implicit_jobs: BTreeSet::new(),
            calibrated: false,
            stats: SlaveStats::default(),
            obs: ObsHandle::default(),
        }
    }

    /// Attach an observability recorder. Lifecycle transitions owned by
    /// the slave (started / finished / evicted / slave-side aborts) and
    /// the per-heartbeat estimate-overdue gauge are recorded through it.
    pub fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Statistics so far.
    pub fn stats(&self) -> SlaveStats {
        self.stats
    }

    /// The estimator (exposed for Fig. 9's estimate time-series).
    pub fn estimator(&self) -> &MigrationEstimator {
        &self.estimator
    }

    /// Buffer accounting (exposed for Fig. 7's memory-usage series).
    /// Tier 0 of the store carries the legacy memory-pool counters.
    pub fn memory(&self) -> &TierStore {
        &self.memory
    }

    /// Whether reads served from a middle tier should promote the block
    /// back into memory (the policy's call; always `false` for Baseline).
    pub fn promote_on_read(&mut self) -> bool {
        self.policy.promote_on_read()
    }

    /// The middle tier (if any) holding a demoted copy of `block`.
    pub fn tier_resident(&self, block: BlockId) -> Option<TierResident> {
        self.memory.resident(block.0)
    }

    /// Promote a demoted middle-tier copy of `block` back into memory on
    /// behalf of `r`'s job. Returns the promoted byte count, or `None`
    /// (state unchanged) if the block is not resident or memory is full.
    pub fn promote(&mut self, block: BlockId, r: JobRef) -> Option<u64> {
        if self.buffered.contains_key(&block) {
            return None;
        }
        let bytes = self.memory.promote(block.0)?;
        self.buffered.insert(block, bytes);
        self.note_job_ref(r, block);
        self.obs.tier_promoted(block, self.node);
        Some(bytes)
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> u64 {
        self.memory.used()
    }

    /// True if `block` is buffered here.
    pub fn has_buffered(&self, block: BlockId) -> bool {
        self.buffered.contains_key(&block)
    }

    /// Number of queued (not yet started) migrations.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if at least one migration is currently running.
    pub fn is_migrating(&self) -> bool {
        !self.active.is_empty()
    }

    /// Blocks currently being migrated (at most one under the paper's
    /// serialized default).
    pub fn active_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.active.iter().map(|a| a.migration.block)
    }

    /// The block currently being migrated, if exactly one is in flight
    /// (convenience for the serialized default).
    pub fn active_block(&self) -> Option<BlockId> {
        match self.active.as_slice() {
            [a] => Some(a.migration.block),
            _ => None,
        }
    }

    /// True if `block` is bound here but not yet buffered (queued or
    /// actively migrating) — used to route missed-read notifications.
    pub fn has_pending(&self, block: BlockId) -> bool {
        self.active_blocks().any(|b| b == block) || self.queue.iter().any(|m| m.block == block)
    }

    /// The ideal local queue depth (§III-B): enough blocks to cover one
    /// heartbeat interval at full disk speed, plus configured slack.
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth(self.reference_block, self.disk_bw)
    }

    /// Free queue slots — how many migrations the slave may pull now.
    /// Zero until the startup calibration probe completes.
    pub fn queue_space(&self) -> usize {
        if !self.calibrated {
            return 0;
        }
        let occupied = self.queue.len() + self.active.len();
        self.queue_depth().saturating_sub(occupied)
    }

    /// True once the startup probe has measured the disk.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Feed the startup probe result: a `bytes`-sized raw disk read that
    /// took `duration` under current conditions. Seeds the estimator and
    /// opens the local queue for pulls.
    pub fn calibrate(&mut self, bytes: u64, duration: SimDuration) {
        self.estimator.on_complete(bytes, duration);
        self.calibrated = true;
    }

    /// Blocks bound here but not yet buffered: local queue, then active
    /// migrations (exposed for auditing).
    pub fn bound_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.queue
            .iter()
            .map(|m| m.block)
            .chain(self.active_blocks())
    }

    /// Bytes bound here but not yet buffered (queue + active).
    pub fn backlog_bytes(&self) -> u64 {
        let q: u64 = self.queue.iter().map(|m| m.bytes).sum();
        q + self.active.iter().map(|a| a.migration.bytes).sum::<u64>()
    }

    /// Accept migrations bound to this slave by the master. Reference
    /// lists gain every interested job now ("a job ID is appended ... when
    /// the slave receives a command to migrate the block", §III-C3).
    pub fn on_bind(&mut self, migrations: Vec<Migration>) {
        for m in migrations {
            for r in &m.jobs {
                self.note_job_ref(*r, m.block);
            }
            self.queue.push_back(m);
        }
    }

    /// Register one more job's interest in an already-buffered block
    /// (the master's `add_refs` outcome).
    pub fn add_ref(&mut self, block: BlockId, r: JobRef) {
        self.note_job_ref(r, block);
    }

    fn note_job_ref(&mut self, r: JobRef, block: BlockId) {
        self.refs.add(r.job, block);
        if r.eviction == EvictionMode::Implicit {
            self.implicit_jobs.insert(r.job);
        }
    }

    /// Start the next queued migration if the disk is free and the buffer
    /// has room. Returns the migration to start as a disk stream, or
    /// `None` if idle, busy, or stalled on memory.
    ///
    /// Queued migrations whose blocks lost all job references (cancelled
    /// by reads or evictions) are silently discarded here.
    pub fn try_start(&mut self, now: SimTime) -> Option<StartedMigration> {
        if self.active.len() >= self.config.max_concurrent_migrations {
            return None;
        }
        while let Some(head) = self.queue.front() {
            if self.refs.is_unreferenced(head.block) {
                // Every interested job already read it or died — skip.
                self.obs
                    .migration_aborted(head.id.0, Some(self.node), cause::UNREFERENCED);
                self.queue.pop_front();
                continue;
            }
            if self.buffered.contains_key(&head.block) {
                // Already buffered here (possible when a master restart
                // loses the soft state and a later request re-binds a block
                // this slave still holds, §III-C1). The references added at
                // bind time keep the copy alive; migrating again would
                // double-pin the buffer.
                self.obs
                    .migration_aborted(head.id.0, Some(self.node), cause::ALREADY_BUFFERED);
                self.queue.pop_front();
                continue;
            }
            // Destination-tier admission check. Tier 0 (memory) pins the
            // bytes for the flight; middle tiers are not reserved — under
            // the serialized default at most one migration is in flight,
            // and completion first-fits further down if the tier filled.
            let dest = (head.dest_tier as usize).min(self.memory.num_tiers() - 1);
            let fits = if dest == 0 {
                self.memory.fits(head.bytes)
            } else {
                (dest..self.memory.num_tiers()).any(|t| {
                    let t = TierId(t as u8);
                    self.memory.tier_capacity(t) - self.memory.tier_used(t) >= head.bytes
                })
            };
            if !fits {
                // §IV-A1: migrations queue until buffer space is available.
                self.stats.memory_stalls += 1;
                return None;
            }
            let m = self
                .queue
                .pop_front()
                .expect("queue non-empty: front was just peeked");
            if dest == 0 {
                assert!(self.memory.pin(m.bytes), "fits() checked above");
            }
            let start = StartedMigration {
                block: m.block,
                bytes: m.bytes,
            };
            self.obs.migration_started(m.id.0, self.node);
            self.active.push(Active {
                migration: m,
                started: now,
            });
            return Some(start);
        }
        None
    }

    /// The active migration's disk stream finished: the block is now in
    /// memory (simulated `mlock` returned). With the serialized default
    /// there is exactly one in flight; under the concurrency ablation the
    /// caller identifies which block's stream completed.
    pub fn on_migration_complete(&mut self, now: SimTime) -> CompletedMigration {
        assert_eq!(
            self.active.len(),
            1,
            "ambiguous completion; use on_migration_complete_block"
        );
        let block = self.active[0].migration.block;
        self.on_migration_complete_block(now, block)
    }

    /// Complete the in-flight migration of `block` specifically.
    pub fn on_migration_complete_block(
        &mut self,
        now: SimTime,
        block: BlockId,
    ) -> CompletedMigration {
        let idx = self
            .active
            .iter()
            .position(|a| a.migration.block == block)
            .expect("no active migration for block");
        let active = self.active.remove(idx);
        let duration = now.saturating_since(active.started);
        let m = active.migration;
        if self.obs.is_enabled() {
            // Realized-vs-estimated error (signed, seconds), sampled
            // before this completion teaches the estimator.
            let est = self.estimator.estimate(m.bytes).as_secs_f64();
            self.obs.gauge(
                "node.estimate_error_secs",
                self.node.index() as u64,
                duration.as_secs_f64() - est,
            );
        }
        self.estimator.on_complete(m.bytes, duration);
        self.stats.completed += 1;
        self.stats.bytes_migrated += m.bytes;
        let dest = (m.dest_tier as usize).min(self.memory.num_tiers() - 1) as u8;
        // If every interested job already read the block from disk while it
        // was migrating, buffering it would be a pure memory leak.
        if self.refs.is_unreferenced(m.block) {
            if dest == 0 {
                self.memory.unpin(m.bytes);
            }
            self.stats.evictions += 1;
            self.obs
                .migration_evicted(m.id.0, self.node, cause::UNREFERENCED);
            return CompletedMigration {
                block: m.block,
                bytes: m.bytes,
                duration,
                evicted_immediately: true,
                tier: dest,
            };
        }
        // A stale demoted copy is superseded by the fresh copy — releasing
        // it here is what makes re-migration a natural promotion path and
        // keeps residency single-tier.
        self.memory.release(m.block.0);
        if dest >= 1 {
            // Middle-tier destination: admit at `dest` or first-fit
            // further down. Nothing was pinned at start, so a tier that
            // filled mid-flight (demotions) costs only the wasted read.
            let Some(landed) = self.memory.demote(m.block.0, m.bytes, TierId(dest - 1)) else {
                self.stats.evictions += 1;
                self.obs
                    .migration_evicted(m.id.0, self.node, cause::TIER_FULL);
                return CompletedMigration {
                    block: m.block,
                    bytes: m.bytes,
                    duration,
                    evicted_immediately: true,
                    tier: dest,
                };
            };
            self.obs.migration_finished(m.id.0, self.node, duration);
            return CompletedMigration {
                block: m.block,
                bytes: m.bytes,
                duration,
                evicted_immediately: false,
                tier: landed.0,
            };
        }
        self.buffered.insert(m.block, m.bytes);
        self.obs.migration_finished(m.id.0, self.node, duration);
        CompletedMigration {
            block: m.block,
            bytes: m.bytes,
            duration,
            evicted_immediately: false,
            tier: 0,
        }
    }

    /// Heartbeat processing: refresh the in-progress estimate if the
    /// active migration is overdue (§IV-A) and report estimate + backlog.
    pub fn on_heartbeat(&mut self, now: SimTime) -> HeartbeatReport {
        if self.obs.is_enabled() {
            // How far the worst in-flight migration is past its *current*
            // estimate, sampled before the refresh below corrects it. A
            // nonzero sample is exactly the condition that fires the
            // §IV-A in-progress refresh (elapsed > estimate).
            let overdue = self
                .active
                .iter()
                .map(|a| {
                    let elapsed = now.saturating_since(a.started).as_secs_f64();
                    let estimate = self.estimator.estimate(a.migration.bytes).as_secs_f64();
                    (elapsed - estimate).max(0.0)
                })
                .fold(0.0, f64::max);
            self.obs.gauge(
                "node.estimate_overdue_secs",
                self.node.index() as u64,
                overdue,
            );
        }
        if self.config.in_progress_refresh {
            // borrow dance: collect first, estimator is a separate field
            let samples: Vec<(u64, SimDuration)> = self
                .active
                .iter()
                .map(|a| (a.migration.bytes, now.saturating_since(a.started)))
                .collect();
            for (bytes, elapsed) in samples {
                self.estimator.refresh_in_progress(bytes, elapsed);
            }
        }
        HeartbeatReport {
            secs_per_byte: if self.calibrated {
                self.estimator.secs_per_byte()
            } else {
                UNCALIBRATED_SECS_PER_BYTE
            },
            queued_bytes: self.backlog_bytes(),
            queue_space: self.queue_space(),
        }
    }

    /// A task on some node read `block` (served from this slave's buffer
    /// or anywhere else — the slave only cares about its own state):
    ///
    /// * a queued (unstarted) migration of the block is cancelled — a
    ///   missed read;
    /// * if `job` opted into implicit eviction, its reference is dropped;
    ///   a buffered block whose list empties is evicted.
    ///
    /// Returns evictions the caller must apply (unregister + unpin).
    pub fn on_read(&mut self, block: BlockId, job: JobId) -> Vec<Eviction> {
        // Cancel a queued migration of this block (missed read): the
        // reader got it from disk; migrating afterwards is wasted work
        // *if nobody else wants it*. Drop only this job's ref; try_start
        // discards the entry once all refs are gone.
        let mut evictions = Vec::new();
        let queued = self.queue.iter().any(|m| m.block == block);
        if self.implicit_jobs.contains(&job) || queued {
            let became_free = self.refs.remove(job, block);
            if became_free {
                if queued {
                    for m in self.queue.iter().filter(|m| m.block == block) {
                        self.obs
                            .migration_aborted(m.id.0, Some(self.node), cause::MISSED_READ);
                    }
                    self.queue.retain(|m| m.block != block);
                    self.stats.missed_reads += 1;
                }
                if let Some(bytes) = self.buffered.remove(&block) {
                    evictions.push(self.evict_buffered(block, bytes));
                } else if let Some(ev) = self.evict_tier_resident(block) {
                    evictions.push(ev);
                }
            }
        }
        evictions
    }

    /// Explicit evict command for `job` (§III-C3): drop all its references
    /// and evict buffered blocks that became unreferenced.
    pub fn evict_job(&mut self, job: JobId) -> Vec<Eviction> {
        let freed = self.refs.remove_job(job);
        self.implicit_jobs.remove(&job);
        self.apply_evictions(freed, cause::JOB_EVICTED)
    }

    /// Memory-pressure scavenge (§III-C3): query the cluster scheduler via
    /// `is_active` and clear references of finished/failed jobs.
    pub fn scavenge(&mut self, is_active: impl Fn(JobId) -> bool) -> Vec<Eviction> {
        let freed = self.refs.scavenge(&is_active);
        self.implicit_jobs.retain(|&j| is_active(j));
        self.apply_evictions(freed, cause::SCAVENGED)
    }

    /// True once buffer usage crosses the scavenge threshold.
    pub fn needs_scavenge(&self) -> bool {
        self.memory.used() as f64 >= self.config.scavenge_threshold * self.memory.capacity() as f64
    }

    /// Release a buffered block's memory and decide its fate: demoted
    /// one tier down when the policy allows and a lower tier has room,
    /// dropped back to disk-only otherwise. Every eviction path routes
    /// through here so none silently discards bytes — the outcome is
    /// cause-stamped (`evict-demote` vs `evict-drop`) on the recorder.
    fn evict_buffered(&mut self, block: BlockId, bytes: u64) -> Eviction {
        self.memory.unpin(bytes);
        self.stats.evictions += 1;
        let demoted_to = if self.memory.num_tiers() > 1 && self.policy.demote_on_pressure() {
            self.memory.demote(block.0, bytes, TierId::MEM).map(|t| t.0)
        } else {
            None
        };
        self.obs.tier_evicted(block, self.node, demoted_to);
        Eviction {
            block,
            bytes,
            demoted_to,
        }
    }

    /// Drop an unreferenced middle-tier copy of `block` (the job(s) that
    /// wanted it are done; a demoted or tier-targeted copy with no
    /// remaining interest is reclaimed like any buffered block). `None`
    /// when the block is not tier-resident — always on the legacy stack.
    fn evict_tier_resident(&mut self, block: BlockId) -> Option<Eviction> {
        let r = self.memory.release(block.0)?;
        self.stats.evictions += 1;
        self.obs.tier_evicted(block, self.node, None);
        Some(Eviction {
            block,
            bytes: r.bytes,
            demoted_to: None,
        })
    }

    fn apply_evictions(&mut self, freed: Vec<BlockId>, why: &'static str) -> Vec<Eviction> {
        let mut out = Vec::new();
        for block in freed {
            if let Some(bytes) = self.buffered.remove(&block) {
                let ev = self.evict_buffered(block, bytes);
                out.push(ev);
            } else if let Some(ev) = self.evict_tier_resident(block) {
                out.push(ev);
            }
            // Unstarted queue entries for freed blocks are discarded lazily
            // by try_start; drop them eagerly so backlog reporting is honest.
            for m in self.queue.iter().filter(|m| m.block == block) {
                self.obs.migration_aborted(m.id.0, Some(self.node), why);
            }
            self.queue.retain(|m| m.block != block);
        }
        out
    }

    /// Revoke the binding of `block` on the master's orders (failure
    /// detector re-binding): a queued entry is removed outright; an active
    /// migration is cancelled and its pinned memory released — the caller
    /// must also cancel the corresponding disk stream. Deliberately
    /// **obs-silent**: the master owns the abort event for detector
    /// unbinds, so the span gets exactly one terminal record.
    ///
    /// Job references added at bind time are dropped unless the block is
    /// also buffered here (a master-restart re-bind), where they keep the
    /// existing copy alive.
    pub fn revoke(&mut self, block: BlockId) -> Revoked {
        if let Some(idx) = self.queue.iter().position(|m| m.block == block) {
            let m = self
                .queue
                .remove(idx)
                .expect("index from position() is in bounds");
            if !self.buffered.contains_key(&block) {
                for r in &m.jobs {
                    self.refs.remove(r.job, block);
                }
            }
            return Revoked::Queued;
        }
        if let Some(idx) = self.active.iter().position(|a| a.migration.block == block) {
            let a = self.active.remove(idx);
            if (a.migration.dest_tier as usize).min(self.memory.num_tiers() - 1) == 0 {
                self.memory.unpin(a.migration.bytes);
            }
            for r in &a.migration.jobs {
                self.refs.remove(r.job, block);
            }
            return Revoked::Active;
        }
        Revoked::NotBound
    }

    /// Blocks in the local queue (bound but not started), front first.
    pub fn queued_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.queue.iter().map(|m| m.block)
    }

    /// Slave process restart (§III-C2): the OS reclaims all buffer space;
    /// the new process tells the master to drop its state. Returns the
    /// blocks that were buffered (for unregistration).
    pub fn restart(&mut self) -> Vec<BlockId> {
        for m in &self.queue {
            self.obs
                .migration_aborted(m.id.0, Some(self.node), cause::SLAVE_RESTART);
        }
        for a in &self.active {
            self.obs
                .migration_aborted(a.migration.id.0, Some(self.node), cause::SLAVE_RESTART);
        }
        // BTreeMap: already in ascending BlockId order.
        let blocks: Vec<BlockId> = std::mem::take(&mut self.buffered).into_keys().collect();
        self.memory.clear();
        self.queue.clear();
        self.active.clear();
        self.refs.clear();
        self.implicit_jobs.clear();
        self.estimator.reset();
        self.calibrated = false;
        blocks
    }
}

impl simkit::audit::Audit for Slave {
    /// Conservation invariants at this slave:
    ///
    /// * pinned bytes are exactly the buffered blocks plus in-flight
    ///   migrations (every pin has an owner, every owner is pinned);
    /// * in-flight migrations respect the configured concurrency (one
    ///   under the paper's serialized default, §III-B);
    /// * every buffered block still has a non-empty reference list
    ///   (§III-C3: empty list ⇒ evicted);
    /// * a block is bound here at most once and is never migrating while
    ///   already buffered (§III-A1: binding is final);
    /// * the advertised migration-cost estimate is finite and positive
    ///   (§IV-A) — Algorithm 1 divides the cluster's work by it.
    ///
    /// * a block never lives in memory and a middle tier at once (single
    ///   residency across the tier stack).
    ///
    /// Delegates to the [`TierStore`] and [`ReferenceLists`] audits.
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let name = format!("slave[{}]", self.node.index());
        let c = name.as_str();
        self.memory.audit(report);
        self.refs.audit(report);
        report.check(
            self.active.len() <= self.config.max_concurrent_migrations,
            c,
            "§III-B: in-flight migrations within the configured concurrency",
            || {
                format!(
                    "{} active > limit {}",
                    self.active.len(),
                    self.config.max_concurrent_migrations
                )
            },
        );
        let owned: u64 = self.buffered.values().sum::<u64>()
            + self
                .active
                .iter()
                .filter(|a| (a.migration.dest_tier as usize).min(self.memory.num_tiers() - 1) == 0)
                .map(|a| a.migration.bytes)
                .sum::<u64>();
        report.check(
            self.memory.used() == owned,
            c,
            "pinned bytes equal buffered plus in-flight migration bytes",
            || format!("pinned {} != buffered+active {}", self.memory.used(), owned),
        );
        for &block in self.buffered.keys() {
            report.check(
                !self.refs.is_unreferenced(block),
                c,
                "§III-C3: every buffered block has a non-empty reference list",
                || format!("{block} is buffered but unreferenced"),
            );
            report.check(
                self.memory.resident(block.0).is_none(),
                c,
                "a block is never both in memory and demoted to a middle tier",
                || format!("{block} is buffered and middle-tier resident"),
            );
        }
        let mut seen = std::collections::BTreeSet::new();
        for a in &self.active {
            report.check(
                !self.buffered.contains_key(&a.migration.block),
                c,
                "§III-A1: a block is never migrating while already buffered",
                || format!("{} is both active and buffered", a.migration.block),
            );
            report.check(
                seen.insert(a.migration.block),
                c,
                "§III-A1: a block is in flight here at most once",
                || format!("{} is active twice", a.migration.block),
            );
        }
        let spb = if self.calibrated {
            self.estimator.secs_per_byte()
        } else {
            UNCALIBRATED_SECS_PER_BYTE
        };
        report.check(
            spb.is_finite() && spb > 0.0,
            c,
            "§IV-A: the advertised migration-cost estimate is finite and positive",
            || format!("secs_per_byte = {spb}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MigrationId;

    const MB: u64 = 1 << 20;
    const BLOCK: u64 = 256 * MB;
    const BW: f64 = 140.0 * MB as f64;

    fn j(i: u64) -> JobId {
        JobId(i)
    }
    fn b(i: u64) -> BlockId {
        BlockId(i)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn mig(i: u64, bytes: u64, jobs: &[(u64, EvictionMode)]) -> Migration {
        Migration {
            id: MigrationId(i),
            block: b(i),
            bytes,
            jobs: jobs
                .iter()
                .map(|&(job, eviction)| JobRef {
                    job: j(job),
                    eviction,
                })
                .collect(),
            replicas: vec![NodeId(0)],
            attempt: 0,
            dest_tier: 0,
        }
    }

    fn slave() -> Slave {
        let mut s = Slave::new(NodeId(0), DyrsConfig::default(), BW, 4 * BLOCK, BLOCK);
        // probe read at the idle-disk rate
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        s
    }

    #[test]
    fn serialized_execution_one_at_a_time() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        let first = s.try_start(t(0)).unwrap();
        assert_eq!(first.block, b(1));
        assert!(s.try_start(t(0)).is_none(), "strictly one active migration");
        let done = s.on_migration_complete(t(2));
        assert_eq!(done.block, b(1));
        assert!(!done.evicted_immediately);
        assert!(s.has_buffered(b(1)));
        let second = s.try_start(t(2)).unwrap();
        assert_eq!(second.block, b(2));
    }

    #[test]
    fn concurrency_ablation_allows_parallel_migrations() {
        let cfg = DyrsConfig {
            max_concurrent_migrations: 2,
            ..DyrsConfig::default()
        };
        let mut s = Slave::new(NodeId(0), cfg, BW, 8 * BLOCK, BLOCK);
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(3, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        assert_eq!(s.try_start(t(0)).unwrap().block, b(1));
        assert_eq!(s.try_start(t(0)).unwrap().block, b(2));
        assert!(s.try_start(t(0)).is_none(), "limit is two");
        assert!(s.has_pending(b(1)) && s.has_pending(b(2)) && s.has_pending(b(3)));
        assert_eq!(s.active_block(), None, "ambiguous with two in flight");
        // completions can land out of order
        let done = s.on_migration_complete_block(t(3), b(2));
        assert_eq!(done.block, b(2));
        assert_eq!(s.try_start(t(3)).unwrap().block, b(3));
        s.on_migration_complete_block(t(5), b(1));
        s.on_migration_complete_block(t(6), b(3));
        assert!(!s.is_migrating());
        assert_eq!(s.buffered_bytes(), 3 * BLOCK);
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn ambiguous_completion_panics() {
        let cfg = DyrsConfig {
            max_concurrent_migrations: 2,
            ..DyrsConfig::default()
        };
        let mut s = Slave::new(NodeId(0), cfg, BW, 8 * BLOCK, BLOCK);
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0));
        s.try_start(t(0));
        s.on_migration_complete(t(2)); // must use the _block variant
    }

    #[test]
    fn completion_updates_estimator() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Explicit)])]);
        s.try_start(t(0)).unwrap();
        let cold = s.estimator().estimate(BLOCK);
        s.on_migration_complete(t(20)); // much slower than the idle prior
        assert!(s.estimator().estimate(BLOCK) > cold);
    }

    #[test]
    fn queue_space_respects_depth() {
        let s = slave();
        // 256MB at 140MB/s ≈ 1.83 s/block; 1 s heartbeat → depth 1+slack = 2
        assert_eq!(s.queue_depth(), 2);
        assert_eq!(s.queue_space(), 2);
        let mut s = s;
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Explicit)])]);
        assert_eq!(s.queue_space(), 1);
        s.try_start(t(0)).unwrap();
        assert_eq!(s.queue_space(), 1, "active migration still occupies a slot");
        s.on_bind(vec![mig(2, BLOCK, &[(1, EvictionMode::Explicit)])]);
        assert_eq!(s.queue_space(), 0);
    }

    #[test]
    fn heartbeat_reports_backlog_and_refreshes_estimate() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        let hb = s.on_heartbeat(t(0));
        assert_eq!(hb.queued_bytes, 2 * BLOCK);
        let before = hb.secs_per_byte;
        // 60 s into a ~2 s migration: estimate must have been pushed up
        let hb = s.on_heartbeat(t(60));
        assert!(hb.secs_per_byte > before);
    }

    #[test]
    fn memory_stall_blocks_start_until_eviction() {
        let mut s = Slave::new(NodeId(0), DyrsConfig::default(), BW, BLOCK, BLOCK);
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(2, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        // buffer is full: block 2 cannot start
        assert!(s.try_start(t(2)).is_none());
        assert_eq!(s.stats().memory_stalls, 1);
        // job 1 finishes → eviction frees space
        let ev = s.evict_job(j(1));
        assert_eq!(ev.len(), 1);
        assert!(s.try_start(t(3)).is_some());
    }

    #[test]
    fn implicit_eviction_on_read() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Implicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        assert!(s.has_buffered(b(1)));
        let ev = s.on_read(b(1), j(1));
        assert_eq!(
            ev,
            vec![Eviction {
                block: b(1),
                bytes: BLOCK,
                demoted_to: None,
            }]
        );
        assert!(!s.has_buffered(b(1)));
        assert_eq!(s.buffered_bytes(), 0);
    }

    #[test]
    fn explicit_mode_survives_reads() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Explicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        assert!(s.on_read(b(1), j(1)).is_empty());
        assert!(s.has_buffered(b(1)));
        let ev = s.evict_job(j(1));
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn shared_block_evicted_after_last_implicit_reader() {
        let mut s = slave();
        s.on_bind(vec![mig(
            1,
            BLOCK,
            &[(1, EvictionMode::Implicit), (2, EvictionMode::Implicit)],
        )]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        assert!(s.on_read(b(1), j(1)).is_empty(), "job 2 still expects it");
        assert_eq!(s.on_read(b(1), j(2)).len(), 1);
    }

    #[test]
    fn missed_read_cancels_queued_migration() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Implicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Implicit)]),
        ]);
        s.try_start(t(0)).unwrap(); // block 1 active
                                    // block 2 is read from disk before its migration started
        let ev = s.on_read(b(2), j(1));
        assert!(ev.is_empty());
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().missed_reads, 1);
        // completing block 1 leaves nothing else to start
        s.on_migration_complete(t(2));
        assert!(s.try_start(t(2)).is_none());
    }

    #[test]
    fn read_during_active_migration_evicts_on_completion() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Implicit)])]);
        s.try_start(t(0)).unwrap();
        // the only interested job reads the block from disk mid-migration
        let ev = s.on_read(b(1), j(1));
        assert!(
            ev.is_empty(),
            "migration still running; nothing buffered yet"
        );
        let done = s.on_migration_complete(t(2));
        assert!(done.evicted_immediately, "nobody wants the buffered copy");
        assert_eq!(s.buffered_bytes(), 0);
    }

    #[test]
    fn scavenge_clears_dead_jobs() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(2, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        s.try_start(t(2)).unwrap();
        s.on_migration_complete(t(4));
        assert_eq!(s.buffered_bytes(), 2 * BLOCK);
        // job 1 died without evicting
        let ev = s.scavenge(|job| job == j(2));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].block, b(1));
        assert!(s.has_buffered(b(2)));
    }

    #[test]
    fn needs_scavenge_threshold() {
        let mut s = Slave::new(NodeId(0), DyrsConfig::default(), BW, 2 * BLOCK, BLOCK);
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        assert!(!s.needs_scavenge());
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        s.try_start(t(2)).unwrap();
        s.on_migration_complete(t(4));
        assert!(s.needs_scavenge(), "buffer 100% full ≥ 80% threshold");
    }

    #[test]
    fn restart_drops_everything_and_reports_buffered() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        let dropped = s.restart();
        assert_eq!(dropped, vec![b(1)]);
        assert_eq!(s.buffered_bytes(), 0);
        assert_eq!(s.queue_len(), 0);
        assert!(!s.is_migrating());
        assert!(s.estimator().is_cold());
    }

    #[test]
    fn evict_job_cancels_its_queued_migrations() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Explicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Explicit)]),
        ]);
        s.try_start(t(0)).unwrap();
        s.evict_job(j(1));
        assert_eq!(s.queue_len(), 0, "queued migration for evicted job dropped");
        // the active one finishes but is discarded immediately
        let done = s.on_migration_complete(t(2));
        assert!(done.evicted_immediately);
    }

    #[test]
    fn add_ref_keeps_buffered_block_alive() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Implicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        s.add_ref(
            b(1),
            JobRef {
                job: j(2),
                eviction: EvictionMode::Implicit,
            },
        );
        assert!(s.on_read(b(1), j(1)).is_empty(), "job 2 still referenced");
        assert_eq!(s.on_read(b(1), j(2)).len(), 1);
    }

    #[test]
    fn revoke_removes_queued_entry_and_its_refs() {
        let mut s = slave();
        s.on_bind(vec![
            mig(1, BLOCK, &[(1, EvictionMode::Implicit)]),
            mig(2, BLOCK, &[(1, EvictionMode::Implicit)]),
        ]);
        assert_eq!(s.revoke(b(2)), Revoked::Queued);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.queued_blocks().collect::<Vec<_>>(), vec![b(1)]);
        assert!(!s.has_pending(b(2)));
        // the dropped reference cannot resurrect the block on a later read
        assert!(s.on_read(b(2), j(1)).is_empty());
        assert_eq!(s.revoke(b(2)), Revoked::NotBound, "stale revoke is a no-op");
    }

    #[test]
    fn revoke_cancels_active_migration_and_unpins() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Explicit)])]);
        s.try_start(t(0)).unwrap();
        assert_eq!(s.buffered_bytes(), BLOCK, "in-flight bytes pinned");
        assert_eq!(s.revoke(b(1)), Revoked::Active);
        assert_eq!(s.buffered_bytes(), 0, "pin released on cancellation");
        assert!(!s.is_migrating());
        // the queue is free to start other work immediately
        s.on_bind(vec![mig(2, BLOCK, &[(1, EvictionMode::Explicit)])]);
        assert!(s.try_start(t(1)).is_some());
    }

    fn tiered_slave(buffer_capacities: &[u64], kind: TierPolicyKind) -> Slave {
        let mut s = Slave::new_tiered(
            NodeId(0),
            DyrsConfig::default(),
            BW,
            buffer_capacities,
            BLOCK,
            TierPolicy::new(kind, simkit::Rng::new(7)),
        );
        s.calibrate(32 * MB, SimDuration::from_secs_f64(32.0 * MB as f64 / BW));
        s
    }

    #[test]
    fn eviction_demotes_when_a_lower_tier_has_room() {
        let mut s = tiered_slave(&[4 * BLOCK, 2 * BLOCK], TierPolicyKind::Baseline);
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Implicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        let ev = s.on_read(b(1), j(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].demoted_to, Some(1), "copy retained one tier down");
        assert!(!s.has_buffered(b(1)));
        assert_eq!(s.tier_resident(b(1)).map(|r| r.tier), Some(TierId(1)));
        assert_eq!(s.memory().tier_used(TierId(1)), BLOCK);
        assert_eq!(s.buffered_bytes(), 0);
        // a later job promotes the demoted copy back into memory
        let bytes = s
            .promote(
                b(1),
                JobRef {
                    job: j(2),
                    eviction: EvictionMode::Explicit,
                },
            )
            .expect("resident and memory has room");
        assert_eq!(bytes, BLOCK);
        assert!(s.has_buffered(b(1)));
        assert_eq!(s.tier_resident(b(1)), None, "single residency restored");
    }

    #[test]
    fn eviction_drops_when_every_lower_tier_is_full() {
        let mut s = tiered_slave(&[4 * BLOCK, BLOCK], TierPolicyKind::Baseline);
        for i in 1..=2 {
            s.on_bind(vec![mig(i, BLOCK, &[(i, EvictionMode::Implicit)])]);
            s.try_start(t(i)).unwrap();
            s.on_migration_complete(t(i + 10));
        }
        // first eviction fills tier 1; the second has nowhere to go
        assert_eq!(s.on_read(b(1), j(1))[0].demoted_to, Some(1));
        assert_eq!(s.on_read(b(2), j(2))[0].demoted_to, None);
        assert_eq!(s.tier_resident(b(2)), None);
    }

    #[test]
    fn remigration_supersedes_the_demoted_copy() {
        let mut s = tiered_slave(&[4 * BLOCK, 2 * BLOCK], TierPolicyKind::Baseline);
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Implicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        s.on_read(b(1), j(1));
        assert!(s.tier_resident(b(1)).is_some());
        // a fresh migration of the same block lands back in memory
        s.on_bind(vec![mig(1, BLOCK, &[(2, EvictionMode::Explicit)])]);
        s.try_start(t(3)).unwrap();
        s.on_migration_complete(t(5));
        assert!(s.has_buffered(b(1)));
        assert_eq!(s.tier_resident(b(1)), None, "stale resident released");
        assert_eq!(s.memory().tier_used(TierId(1)), 0);
    }

    #[test]
    fn promote_on_read_follows_the_policy() {
        let mut base = tiered_slave(&[4 * BLOCK, 2 * BLOCK], TierPolicyKind::Baseline);
        assert!(!base.promote_on_read());
        let mut hot = tiered_slave(&[4 * BLOCK, 2 * BLOCK], TierPolicyKind::Hotness);
        assert!(hot.promote_on_read());
    }

    #[test]
    fn revoke_keeps_buffered_copy_alive() {
        let mut s = slave();
        s.on_bind(vec![mig(1, BLOCK, &[(1, EvictionMode::Explicit)])]);
        s.try_start(t(0)).unwrap();
        s.on_migration_complete(t(2));
        // master restart re-binds the same block here, then revokes it
        s.on_bind(vec![mig(1, BLOCK, &[(2, EvictionMode::Explicit)])]);
        assert_eq!(s.revoke(b(1)), Revoked::Queued);
        assert!(s.has_buffered(b(1)), "existing copy survives the revoke");
        assert_eq!(s.buffered_bytes(), BLOCK);
    }
}
