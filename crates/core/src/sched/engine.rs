//! The two Algorithm 1 engines: the paper-shaped full rescan
//! ([`SchedEngine::Reference`]) and the dirty-set incremental pass
//! ([`SchedEngine::Incremental`]).
//!
//! Both score exclusively from the scheduler's per-node snapshot
//! (`snap_spb` / `snap_queued` / `snap_candidate`) with the same winner
//! rule — the strict minimum over `(est_finish, rank)` with `<` on the
//! float score — so their decisions are bit-identical, not merely close.
//!
//! # Equivalence argument
//!
//! The reference pass walks the queue in admission order carrying a
//! per-node finish-time trajectory `finish[n]`, initialized to
//! `spb[n]·queued[n]` and advanced to the winner's score whenever an
//! entry picks `n`. An entry's candidate score on `n` therefore depends
//! only on (a) the snapshot values of `n` and (b) the set of *earlier*
//! queue entries targeted at `n`. The incremental pass exploits the
//! contrapositive: if neither changed since the last pass, the cached
//! score is still exact.
//!
//! * Every entry whose decision *could* change is in the visit set: a
//!   snapshot change dirties the node, and `replica_idx[node]` contains
//!   every entry that can see it; new admissions enter via
//!   `dirty_entries`; a removal of a targeted entry dirties its node.
//! * Visits happen in ascending queue order, so when entry `e` is scored
//!   every dirty node's trajectory is live-correct up to `e`'s position,
//!   and every clean candidate's cached score is exact by induction.
//! * When a visited entry's winner moves between *clean* nodes, those
//!   nodes' trajectories change downstream of `e`: the engine
//!   materializes the node's live trajectory from the `targeted` index
//!   (the previous targeted entry's cached winner score — an exact cached
//!   value, never re-derived arithmetic, because `a + b − b ≠ a` in
//!   floating point) and extends the visit set with the node's replica
//!   holders after `e`'s position. This is the cascade that keeps the
//!   greedy chain identical to the reference walk.

use super::{Entry, OrderKey, RetargetStats, SchedEngine, Scheduler};
use dyrs_cluster::NodeId;
use dyrs_obs::{CandidateScore, ObsHandle, ProvenanceRecord};
use simkit::SimTime;
use std::collections::BTreeSet;

/// The winner rule shared by both engines: strictly better score, or an
/// exact score tie broken by placement rank.
#[inline]
fn better(candidate: f64, rank: usize, best: Option<(f64, usize, NodeId, u8)>) -> bool {
    best.is_none_or(|(bf, br, _, _)| candidate < bf || (candidate == bf && rank < br))
}

/// One node's tier × replica scoring: the minimum candidate score over
/// the node's eligible destination tiers, with exact ties kept on the
/// lower (faster) tier because enumeration ascends and the comparison is
/// strict. The write factor is exactly 1.0 for memory, and that branch
/// adds the bare `base + work` term — bit-identical to the pre-tier
/// arithmetic on every legacy (memory-only) snapshot.
#[inline]
fn tier_min(tiers: &[(u8, f64)], base: f64, work: f64) -> (f64, u8) {
    let mut best = f64::INFINITY;
    let mut best_tier = 0u8;
    let mut first = true;
    for &(tier, factor) in tiers {
        let candidate = if factor == 1.0 {
            base + work
        } else {
            base + work * factor
        };
        if first || candidate < best {
            best = candidate;
            best_tier = tier;
            first = false;
        }
    }
    (best, best_tier)
}

impl Scheduler {
    /// One Algorithm 1 pass with the configured engine. Emits
    /// `migration_targeted` span events for every entry whose winner
    /// changed and a provenance batch covering the rescored entries.
    pub(crate) fn retarget(&mut self, obs: &ObsHandle) -> RetargetStats {
        match self.cfg.engine {
            SchedEngine::Reference => self.pass_reference(obs),
            SchedEngine::Incremental => self.pass_incremental(obs),
        }
    }

    /// A candidate node's finish-time trajectory just *before* queue
    /// position `pos`: the cached winner score of the last earlier entry
    /// targeted at the node, or the snapshot base when none is. Reading
    /// the cached value back (rather than recomputing) is what keeps the
    /// incremental cascade bit-identical to the reference walk.
    fn finish_before(&self, node: usize, pos: (OrderKey, usize)) -> f64 {
        match self.targeted[node].range(..pos).next_back() {
            Some(&(_, idx)) => {
                self.raw_pending[idx]
                    .as_ref()
                    .expect("targeted slots are live")
                    .winner_score
            }
            None => self.snap_spb[node] * self.snap_queued[node],
        }
    }

    /// The paper's full rescan (§III-A2 / Algorithm 1): greedily set each
    /// pending block's target to the replica expected to finish earliest
    /// given snapshot cost and backlog, walking the queue in admission
    /// order and charging each winner's score to its node's trajectory.
    fn pass_reference(&mut self, obs: &ObsHandle) -> RetargetStats {
        let mut finish: Vec<f64> = (0..self.snap_spb.len())
            .map(|i| self.snap_spb[i] * self.snap_queued[i])
            .collect();
        let order: Vec<(OrderKey, usize)> = self.queue.iter().copied().collect();
        let total = order.len() as u64;
        // Decision provenance is recording-only; skip all of it (including
        // the per-entry score vectors) when nothing is listening — this
        // loop is the `bench/algo1` hot path.
        let recording = obs.is_enabled();
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        let mut candidates: Vec<(NodeId, usize)> = Vec::new();
        for (key, idx) in order {
            let mut entry = self.raw_pending[idx].take().expect("queued slots are live");
            // Candidates are scanned in NodeId order, but equal finish
            // times tie-break on *placement rank* (the replica's position
            // in the namenode's placement order): the first replica is the
            // likeliest data-local reader, so binding there keeps the
            // migrated copy next to the map task that wants it. The winner
            // is a pure minimum over (finish, rank), so the result cannot
            // depend on the order this loop happens to visit candidates.
            candidates.clear();
            candidates.extend(
                entry
                    .migration
                    .replicas
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, loc)| self.snap_candidate[loc.index()])
                    .map(|(rank, loc)| (loc, rank)),
            );
            candidates.sort_unstable();
            let bytes = entry.migration.bytes as f64;
            let mut best: Option<(f64, usize, NodeId, u8)> = None;
            let mut cache = vec![f64::INFINITY; entry.migration.replicas.len()];
            let mut tier_cache = vec![0u8; entry.migration.replicas.len()];
            for &(loc, rank) in &candidates {
                let i = loc.index();
                let (candidate, tier) =
                    tier_min(&self.snap_tiers[i], finish[i], self.snap_spb[i] * bytes);
                cache[rank] = candidate;
                tier_cache[rank] = tier;
                if better(candidate, rank, best) {
                    best = Some((candidate, rank, loc, tier));
                }
            }
            self.apply_winner(&mut entry, key, idx, best, obs);
            // Charge the winner to its node's trajectory: later entries
            // queue behind it.
            if let Some((f, _, w, _)) = best {
                finish[w.index()] = f;
            }
            entry.scores = cache;
            entry.tier_of = tier_cache;
            entry.cache_valid = true;
            if recording {
                provenance.push(provenance_record(&entry));
            }
            self.raw_pending[idx] = Some(entry);
        }
        // A full pass leaves nothing stale.
        self.dirty_nodes.clear();
        self.dirty_entries.clear();
        if recording {
            obs.retarget_pass(provenance, total, 0);
        }
        RetargetStats {
            rescored: total,
            skipped: 0,
        }
    }

    /// The incremental pass: rescore only entries whose decision inputs
    /// changed since the last pass (dirty nodes' replica holders, new
    /// admissions, and cascade-affected entries), in admission order.
    fn pass_incremental(&mut self, obs: &ObsHandle) -> RetargetStats {
        let total = self.queue.len() as u64;
        let recording = obs.is_enabled();
        if self.dirty_nodes.is_empty() && self.dirty_entries.is_empty() {
            // Steady state: nothing moved, every cached decision stands.
            if recording {
                obs.retarget_pass(Vec::new(), 0, total);
            }
            return RetargetStats {
                rescored: 0,
                skipped: total,
            };
        }
        // Live finish-time trajectories, maintained only for nodes whose
        // downstream scores are in motion; `None` means the node's cached
        // trajectory is still exact and entries read their cached scores.
        let mut finish: Vec<Option<f64>> = vec![None; self.snap_spb.len()];
        let mut visit: BTreeSet<(OrderKey, usize)> = self.dirty_entries.clone();
        for &d in &self.dirty_nodes {
            finish[d] = Some(self.snap_spb[d] * self.snap_queued[d]);
            visit.extend(self.replica_idx[d].iter().copied());
        }
        let mut rescored = 0u64;
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        while let Some((key, idx)) = visit.pop_first() {
            rescored += 1;
            let mut entry = self.raw_pending[idx]
                .take()
                .expect("visited slots are live");
            let bytes = entry.migration.bytes as f64;
            let had_cache = entry.cache_valid;
            let mut cache = vec![f64::INFINITY; entry.migration.replicas.len()];
            let mut tier_cache = vec![0u8; entry.migration.replicas.len()];
            let mut best: Option<(f64, usize, NodeId, u8)> = None;
            for (rank, &loc) in entry.migration.replicas.iter().enumerate() {
                let i = loc.index();
                if !self.snap_candidate[i] {
                    continue;
                }
                let (score, tier) = match finish[i] {
                    // Node in motion: live trajectory, like the reference.
                    Some(f) => tier_min(&self.snap_tiers[i], f, self.snap_spb[i] * bytes),
                    None => {
                        if had_cache && entry.scores[rank].is_finite() {
                            // Clean node: the cached tier minimum is exact
                            // (a tier-set change dirties the node, so a
                            // clean node's eligible tiers are unchanged).
                            (entry.scores[rank], entry.tier_of[rank])
                        } else {
                            // Never scored here (new admission, or a
                            // candidacy flip that dirtied the node in any
                            // case): materialize from the targeted index.
                            tier_min(
                                &self.snap_tiers[i],
                                self.finish_before(i, (key, idx)),
                                self.snap_spb[i] * bytes,
                            )
                        }
                    }
                };
                cache[rank] = score;
                tier_cache[rank] = tier;
                if better(score, rank, best) {
                    best = Some((score, rank, loc, tier));
                }
            }
            let old_target = entry.target;
            let new_target = best.map(|(_, _, n, _)| n);
            // A winner moving on or off a *clean* node changes that node's
            // trajectory for every later queue position: switch the node to
            // live accounting (seeded from the exact cached state just
            // before this position) and cascade to its later replica
            // holders.
            if old_target != new_target {
                for moved in [old_target, new_target].into_iter().flatten() {
                    let i = moved.index();
                    if finish[i].is_none() {
                        finish[i] = Some(self.finish_before(i, (key, idx)));
                        let after: Vec<(OrderKey, usize)> = self.replica_idx[i]
                            .range((
                                std::ops::Bound::Excluded((key, idx)),
                                std::ops::Bound::Unbounded,
                            ))
                            .copied()
                            .collect();
                        visit.extend(after);
                    }
                }
            }
            self.apply_winner(&mut entry, key, idx, best, obs);
            // Charge the winner to its node's live trajectory (the clean
            // same-winner case needs no update: the cached chain already
            // carries this exact score forward).
            if let Some((f, _, w, _)) = best {
                if finish[w.index()].is_some() {
                    finish[w.index()] = Some(f);
                }
            }
            entry.scores = cache;
            entry.tier_of = tier_cache;
            entry.cache_valid = true;
            if recording {
                provenance.push(provenance_record(&entry));
            }
            self.raw_pending[idx] = Some(entry);
        }
        self.dirty_nodes.clear();
        self.dirty_entries.clear();
        let skipped = total - rescored;
        if recording {
            obs.retarget_pass(provenance, rescored, skipped);
        }
        RetargetStats { rescored, skipped }
    }

    /// Commit a scored entry's winner: update the target, maintain the
    /// per-node bind queues, cache the winner score, and emit the span
    /// event when the target changed.
    fn apply_winner(
        &mut self,
        entry: &mut Entry,
        key: OrderKey,
        idx: usize,
        best: Option<(f64, usize, NodeId, u8)>,
        obs: &ObsHandle,
    ) {
        let old_target = entry.target;
        match best {
            Some((f, _, node, tier)) => {
                entry.target = Some(node);
                entry.target_tier = tier;
                entry.winner_score = f;
                if old_target != Some(node) {
                    obs.migration_targeted(entry.migration.id.0, node);
                }
            }
            None => {
                entry.target = None; // all replicas down right now
                entry.target_tier = 0;
                entry.winner_score = f64::INFINITY;
            }
        }
        if entry.target != old_target {
            if let Some(t) = old_target {
                self.targeted[t.index()].remove(&(key, idx));
            }
            if let Some(t) = entry.target {
                self.targeted[t.index()].insert((key, idx));
            }
        }
    }
}

/// A provenance record for one scored entry, with candidates in
/// `(node, rank)` order. Pass index, timestamps, and the pass-level
/// rescored/skipped counts are stamped by the recorder.
fn provenance_record(entry: &Entry) -> ProvenanceRecord {
    let mut cands: Vec<(u32, usize)> = entry
        .migration
        .replicas
        .iter()
        .enumerate()
        .filter(|&(rank, _)| entry.scores[rank].is_finite())
        .map(|(rank, loc)| (loc.0, rank))
        .collect();
    cands.sort_unstable();
    ProvenanceRecord {
        at: SimTime::ZERO, // recorder stamps time + pass
        pass: 0,
        migration: entry.migration.id.0,
        block: entry.migration.block.0,
        bytes: entry.migration.bytes,
        candidates: cands
            .into_iter()
            .map(|(node, rank)| CandidateScore {
                node,
                rank: rank as u32,
                est_finish_secs: entry.scores[rank],
                tier: entry.tier_of[rank],
            })
            .collect(),
        winner: entry.target.map(|n| n.0),
        rescored: 0,
        skipped: 0,
    }
}
