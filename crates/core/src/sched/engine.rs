//! The three Algorithm 1 engines: the paper-shaped full rescan
//! ([`SchedEngine::Reference`]), the dirty-set incremental pass
//! ([`SchedEngine::Incremental`]), and the shard-local incremental pass
//! with the cascade cost ceiling ([`SchedEngine::Sharded`]).
//!
//! All three score exclusively from the scheduler's per-node snapshot
//! (`snap_spb` / `snap_queued` / `snap_candidate`) with the same winner
//! rule — the strict minimum over `(est_finish, rank)` with `<` on the
//! float score — so their decisions are bit-identical, not merely close.
//!
//! # Equivalence argument
//!
//! The reference pass walks the queue in admission order carrying a
//! per-node finish-time trajectory `finish[n]`, initialized to
//! `spb[n]·queued[n]` and advanced to the winner's score whenever an
//! entry picks `n`. An entry's candidate score on `n` therefore depends
//! only on (a) the snapshot values of `n` and (b) the set of *earlier*
//! queue entries targeted at `n`. The incremental passes exploit the
//! contrapositive: if neither changed since the last pass, the cached
//! score is still exact.
//!
//! * Every entry whose decision *could* change is in the visit set: a
//!   snapshot change dirties the node, and `replica_idx[node]` contains
//!   every entry that can see it; new admissions enter via
//!   `dirty_entries`; a removal of a targeted entry dirties its node.
//! * Visits happen in ascending queue order, so when entry `e` is scored
//!   every dirty node's trajectory is live-correct up to `e`'s position,
//!   and every clean candidate's cached score is exact by induction.
//! * When a visited entry's winner moves between *clean* nodes, those
//!   nodes' trajectories change downstream of `e`: the engine
//!   materializes the node's live trajectory from the `targeted` index
//!   (the previous targeted entry's cached winner score — an exact cached
//!   value, never re-derived arithmetic, because `a + b − b ≠ a` in
//!   floating point) and extends the visit set with the node's replica
//!   holders after `e`'s position. This is the cascade that keeps the
//!   greedy chain identical to the reference walk.
//!
//! With the store range-sharded, "admission order" means the K-way merge
//! over per-shard queues, and "position" means `(OrderKey, shard, idx)`.
//! The sharded pass builds one sorted visit plan per shard up front and
//! walks the plans through the same merge, spilling cascade extensions
//! into a side set; the scoring arithmetic is character-for-character the
//! incremental pass's, so the three engines agree bitwise
//! (`crates/core/tests/sched_equivalence.rs` proves it per pass).
//!
//! # Cascade cost ceiling
//!
//! A dirty set can degenerate: if a pass's visit plan (or its cascade
//! growth) exceeds `cascade_ceiling × shard depth` for some shard, the
//! bookkeeping overhead of incremental scoring outweighs a plain rescan.
//! The sharded engine then abandons the incremental walk and finishes
//! with the reference pass. Decisions are unaffected by construction —
//! every target the abandoned prefix committed is the target the
//! reference walk recomputes — so the switch costs time, never fidelity.
//! Each switch bumps the `sched.cascade_ceiling` counter and is flagged
//! in the pass's provenance via [`RetargetStats::ceiling_hits`].

use super::{Entry, OrderKey, RetargetStats, SchedEngine, Scheduler, Slot};
use dyrs_cluster::NodeId;
use dyrs_obs::{CandidateScore, ObsHandle, ProvenanceRecord};
use simkit::SimTime;
use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Included, Unbounded};

/// The winner rule shared by all engines: strictly better score, or an
/// exact score tie broken by placement rank.
#[inline]
fn better(candidate: f64, rank: usize, best: Option<(f64, usize, NodeId, u8)>) -> bool {
    best.is_none_or(|(bf, br, _, _)| candidate < bf || (candidate == bf && rank < br))
}

/// One node's tier × replica scoring: the minimum candidate score over
/// the node's eligible destination tiers, with exact ties kept on the
/// lower (faster) tier because enumeration ascends and the comparison is
/// strict. The write factor is exactly 1.0 for memory, and that branch
/// adds the bare `base + work` term — bit-identical to the pre-tier
/// arithmetic on every legacy (memory-only) snapshot.
#[inline]
fn tier_min(tiers: &[(u8, f64)], base: f64, work: f64) -> (f64, u8) {
    let mut best = f64::INFINITY;
    let mut best_tier = 0u8;
    let mut first = true;
    for &(tier, factor) in tiers {
        let candidate = if factor == 1.0 {
            base + work
        } else {
            base + work * factor
        };
        if first || candidate < best {
            best = candidate;
            best_tier = tier;
            first = false;
        }
    }
    (best, best_tier)
}

/// Touch-sweep block size for the sharded walk: how many upcoming
/// planned slots get streamed into cache ahead of the scoring cursor.
/// Sized so a block's entry lines and side buffers (~a few hundred bytes
/// per slot) sit comfortably in L2 until the cursor consumes them.
const TOUCH_BLOCK: usize = 256;

/// Touch one planned slot's slab lines so they are in flight before the
/// walk cursor arrives. The crate forbids unsafe code, so streaming is
/// expressed as ordinary loads pinned by `black_box` rather than
/// prefetch intrinsics; called from a tight sweep loop the loads
/// pipeline across iterations and run at memory bandwidth.
#[inline]
fn touch_entry(shard: &super::shard::Shard, idx: usize) {
    use std::hint::black_box;
    let Some(Some(e)) = shard.raw_pending.get(idx) else {
        return;
    };
    // A load per region of the entry the visit will read (field order is
    // unspecified, so spread the touches across the struct).
    black_box(e.migration.bytes);
    black_box(e.migration.id.0);
    black_box(e.seq);
    black_box(e.winner_score);
    black_box(e.cache_valid);
}

/// Touch a slot's heap-side buffers (scores, tiers, replicas). Run as a
/// second sweep over a block whose entry lines are already resident:
/// the buffer pointers then come from cache and the buffer misses
/// themselves pipeline, instead of serializing behind the slab miss.
#[inline]
fn touch_buffers(shard: &super::shard::Shard, idx: usize) {
    use std::hint::black_box;
    let Some(Some(e)) = shard.raw_pending.get(idx) else {
        return;
    };
    black_box(e.scores.first().copied());
    black_box(e.tier_of.first().copied());
    black_box(e.migration.replicas.first().copied());
}

impl Scheduler {
    /// One Algorithm 1 pass with the configured engine. Emits
    /// `migration_targeted` span events for every entry whose winner
    /// changed and a provenance batch covering the rescored entries.
    pub(crate) fn retarget(&mut self, obs: &ObsHandle) -> RetargetStats {
        match self.cfg.engine {
            SchedEngine::Reference => self.pass_reference(obs),
            SchedEngine::Incremental => self.pass_incremental(obs),
            SchedEngine::Sharded => self.pass_sharded(obs),
        }
    }

    /// A candidate node's finish-time trajectory just *before* global
    /// queue position `pos`: the cached winner score of the last earlier
    /// entry targeted at the node, or the snapshot base when none is.
    /// Reading the cached value back (rather than recomputing) is what
    /// keeps the incremental cascade bit-identical to the reference walk.
    ///
    /// "Earlier" is in the merged `(OrderKey, shard, idx)` order, so each
    /// shard's bind queue contributes its last entry below a shard-shaped
    /// bound: everything at a strictly smaller key, plus — for same-key
    /// ties — entries in lower shards (any idx) and same-shard entries at
    /// a smaller idx. The global predecessor is the max candidate.
    fn finish_before(&self, node: usize, pos: (OrderKey, Slot)) -> f64 {
        let (key, (ps, pi)) = pos;
        let mut prev: Option<(OrderKey, Slot)> = None;
        for (s, shard) in self.raw_shards.iter().enumerate() {
            let upper: Bound = match s.cmp(&ps) {
                std::cmp::Ordering::Less => (key, usize::MAX),
                std::cmp::Ordering::Equal => (key, pi),
                std::cmp::Ordering::Greater => (key, 0),
            };
            if let Some(&(k, i)) = shard.targeted[node].range(..upper).next_back() {
                let cand = (k, (s, i));
                if prev.is_none_or(|p| cand > p) {
                    prev = Some(cand);
                }
            }
        }
        match prev {
            Some((_, (s, i))) => {
                self.raw_shards[s].raw_pending[i]
                    .as_ref()
                    .expect("targeted slots are live")
                    .winner_score
            }
            None => self.snap_spb[node] * self.snap_queued[node],
        }
    }

    /// Every entry holding a replica on `node` at a global position
    /// strictly *after* `pos`, pushed into `out` (the cascade extension).
    fn for_replicas_after(
        &self,
        node: usize,
        pos: (OrderKey, Slot),
        out: &mut BTreeSet<(OrderKey, Slot)>,
    ) {
        let (key, (ps, pi)) = pos;
        for (s, shard) in self.raw_shards.iter().enumerate() {
            let lower = match s.cmp(&ps) {
                // lower shard wins same-key ties: only strictly larger keys
                std::cmp::Ordering::Less => Excluded((key, usize::MAX)),
                std::cmp::Ordering::Equal => Excluded((key, pi)),
                // higher shard loses same-key ties: same key already after
                std::cmp::Ordering::Greater => Included((key, 0)),
            };
            out.extend(
                shard.replica_idx[node]
                    .range((lower, Unbounded))
                    .map(|&(k, i)| (k, (s, i))),
            );
        }
    }

    /// The paper's full rescan (§III-A2 / Algorithm 1): greedily set each
    /// pending block's target to the replica expected to finish earliest
    /// given snapshot cost and backlog, walking the merged queue in
    /// admission order and charging each winner's score to its node's
    /// trajectory.
    fn pass_reference(&mut self, obs: &ObsHandle) -> RetargetStats {
        let mut finish: Vec<f64> = (0..self.snap_spb.len())
            .map(|i| self.snap_spb[i] * self.snap_queued[i])
            .collect();
        // With one shard the merge cursor only adds per-element peek
        // machinery on top of plain set iteration; collect directly so the
        // monolithic layout keeps its pre-shard constant factors.
        let order: Vec<(OrderKey, Slot)> = if self.raw_shards.len() == 1 {
            self.raw_shards[0]
                .queue
                .iter()
                .map(|&(k, i)| (k, (0, i)))
                .collect()
        } else {
            super::merge::merged_queue(&self.raw_shards).collect()
        };
        let total = order.len() as u64;
        // Decision provenance is recording-only; skip all of it (including
        // the per-entry score vectors) when nothing is listening — this
        // loop is the `bench/algo1` hot path.
        let recording = obs.is_enabled();
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        let mut candidates: Vec<(NodeId, usize)> = Vec::new();
        for r in &mut self.last_shard_rescored {
            *r = 0;
        }
        for (key, (sno, idx)) in order {
            self.last_shard_rescored[sno] += 1;
            let mut entry = self.raw_shards[sno].raw_pending[idx]
                .take()
                .expect("queued slots are live");
            // Candidates are scanned in NodeId order, but equal finish
            // times tie-break on *placement rank* (the replica's position
            // in the namenode's placement order): the first replica is the
            // likeliest data-local reader, so binding there keeps the
            // migrated copy next to the map task that wants it. The winner
            // is a pure minimum over (finish, rank), so the result cannot
            // depend on the order this loop happens to visit candidates.
            candidates.clear();
            candidates.extend(
                entry
                    .migration
                    .replicas
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, loc)| self.snap_candidate[loc.index()])
                    .map(|(rank, loc)| (loc, rank)),
            );
            candidates.sort_unstable();
            let bytes = entry.migration.bytes as f64;
            let mut best: Option<(f64, usize, NodeId, u8)> = None;
            // Rewrite the entry's score buffers in place (they are always
            // replica-aligned): non-candidate ranks reset to ∞, candidate
            // ranks overwritten below — the same final values the old
            // fresh-vector swap produced, minus two allocations per entry.
            for r in 0..entry.scores.len() {
                entry.scores[r] = f64::INFINITY;
                entry.tier_of[r] = 0;
            }
            for &(loc, rank) in &candidates {
                let i = loc.index();
                let (candidate, tier) =
                    tier_min(&self.snap_tiers[i], finish[i], self.snap_spb[i] * bytes);
                entry.scores[rank] = candidate;
                entry.tier_of[rank] = tier;
                if better(candidate, rank, best) {
                    best = Some((candidate, rank, loc, tier));
                }
            }
            self.apply_winner(&mut entry, key, (sno, idx), best, obs);
            // Charge the winner to its node's trajectory: later entries
            // queue behind it.
            if let Some((f, _, w, _)) = best {
                finish[w.index()] = f;
            }
            entry.cache_valid = true;
            if recording {
                provenance.push(provenance_record(&entry));
            }
            self.raw_shards[sno].raw_pending[idx] = Some(entry);
        }
        // A full pass leaves nothing stale.
        self.dirty_nodes.clear();
        for shard in &mut self.raw_shards {
            shard.dirty_entries.clear();
        }
        if recording {
            obs.retarget_pass(provenance, total, 0);
        }
        RetargetStats {
            rescored: total,
            skipped: 0,
            ceiling_hits: 0,
        }
    }

    /// The incremental pass: rescore only entries whose decision inputs
    /// changed since the last pass (dirty nodes' replica holders, new
    /// admissions, and cascade-affected entries), in admission order.
    ///
    /// This is the monolithic baseline: one global visit set, fresh score
    /// vectors per entry. The sharded pass below does the same walk with
    /// per-shard plans and buffer reuse; this one is kept plain so the
    /// 1M-block benches compare the data-structure work honestly.
    fn pass_incremental(&mut self, obs: &ObsHandle) -> RetargetStats {
        let total = self.len() as u64;
        let recording = obs.is_enabled();
        if self.steady_state() {
            // Steady state: nothing moved, every cached decision stands.
            if recording {
                obs.retarget_pass(Vec::new(), 0, total);
            }
            for r in &mut self.last_shard_rescored {
                *r = 0;
            }
            return RetargetStats {
                rescored: 0,
                skipped: total,
                ceiling_hits: 0,
            };
        }
        // Live finish-time trajectories, maintained only for nodes whose
        // downstream scores are in motion; `None` means the node's cached
        // trajectory is still exact and entries read their cached scores.
        let mut finish: Vec<Option<f64>> = vec![None; self.snap_spb.len()];
        let mut visit: BTreeSet<(OrderKey, Slot)> = BTreeSet::new();
        for (s, shard) in self.raw_shards.iter().enumerate() {
            visit.extend(shard.dirty_entries.iter().map(|&(k, i)| (k, (s, i))));
        }
        for &d in &self.dirty_nodes {
            finish[d] = Some(self.snap_spb[d] * self.snap_queued[d]);
            for (s, shard) in self.raw_shards.iter().enumerate() {
                visit.extend(shard.replica_idx[d].iter().map(|&(k, i)| (k, (s, i))));
            }
        }
        let mut rescored = 0u64;
        for r in &mut self.last_shard_rescored {
            *r = 0;
        }
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        while let Some((key, slot)) = visit.pop_first() {
            rescored += 1;
            self.last_shard_rescored[slot.0] += 1;
            let mut entry = self.raw_shards[slot.0].raw_pending[slot.1]
                .take()
                .expect("visited slots are live");
            let bytes = entry.migration.bytes as f64;
            let had_cache = entry.cache_valid;
            let mut cache = vec![f64::INFINITY; entry.migration.replicas.len()];
            let mut tier_cache = vec![0u8; entry.migration.replicas.len()];
            let mut best: Option<(f64, usize, NodeId, u8)> = None;
            for (rank, &loc) in entry.migration.replicas.iter().enumerate() {
                let i = loc.index();
                if !self.snap_candidate[i] {
                    continue;
                }
                let (score, tier) = match finish[i] {
                    // Node in motion: live trajectory, like the reference.
                    Some(f) => tier_min(&self.snap_tiers[i], f, self.snap_spb[i] * bytes),
                    None => {
                        if had_cache && entry.scores[rank].is_finite() {
                            // Clean node: the cached tier minimum is exact
                            // (a tier-set change dirties the node, so a
                            // clean node's eligible tiers are unchanged).
                            (entry.scores[rank], entry.tier_of[rank])
                        } else {
                            // Never scored here (new admission, or a
                            // candidacy flip that dirtied the node in any
                            // case): materialize from the targeted index.
                            tier_min(
                                &self.snap_tiers[i],
                                self.finish_before(i, (key, slot)),
                                self.snap_spb[i] * bytes,
                            )
                        }
                    }
                };
                cache[rank] = score;
                tier_cache[rank] = tier;
                if better(score, rank, best) {
                    best = Some((score, rank, loc, tier));
                }
            }
            let old_target = entry.target;
            let new_target = best.map(|(_, _, n, _)| n);
            // A winner moving on or off a *clean* node changes that node's
            // trajectory for every later queue position: switch the node to
            // live accounting (seeded from the exact cached state just
            // before this position) and cascade to its later replica
            // holders.
            if old_target != new_target {
                for moved in [old_target, new_target].into_iter().flatten() {
                    let i = moved.index();
                    if finish[i].is_none() {
                        finish[i] = Some(self.finish_before(i, (key, slot)));
                        self.for_replicas_after(i, (key, slot), &mut visit);
                    }
                }
            }
            self.apply_winner(&mut entry, key, slot, best, obs);
            // Charge the winner to its node's live trajectory (the clean
            // same-winner case needs no update: the cached chain already
            // carries this exact score forward).
            if let Some((f, _, w, _)) = best {
                if finish[w.index()].is_some() {
                    finish[w.index()] = Some(f);
                }
            }
            entry.scores = cache;
            entry.tier_of = tier_cache;
            entry.cache_valid = true;
            if recording {
                provenance.push(provenance_record(&entry));
            }
            self.raw_shards[slot.0].raw_pending[slot.1] = Some(entry);
        }
        self.dirty_nodes.clear();
        for shard in &mut self.raw_shards {
            shard.dirty_entries.clear();
        }
        let skipped = total - rescored;
        if recording {
            obs.retarget_pass(provenance, rescored, skipped);
        }
        RetargetStats {
            rescored,
            skipped,
            ceiling_hits: 0,
        }
    }

    /// The shard-local incremental pass. Same visits, same arithmetic,
    /// same decisions as [`Self::pass_incremental`] — proven per pass by
    /// the equivalence suite — but organized for the 1M-entry regime:
    ///
    /// * the visit plan is built per shard as a sorted `Vec` (dirty
    ///   entries plus dirty nodes' replica holders, deduped), so the walk
    ///   is S pointer-bumps merged on the fly instead of a million-node
    ///   global BTree churn;
    /// * cascade extensions go to a (usually tiny) side set, consulted
    ///   alongside the plan heads;
    /// * entry score buffers are rewritten in place — the steady-state
    ///   hot path allocates nothing per entry;
    /// * the cascade cost ceiling bails to the reference rescan when the
    ///   plan stops being sparse (see module docs).
    fn pass_sharded(&mut self, obs: &ObsHandle) -> RetargetStats {
        let total = self.len() as u64;
        let recording = obs.is_enabled();
        if self.steady_state() {
            if recording {
                obs.retarget_pass(Vec::new(), 0, total);
            }
            for r in &mut self.last_shard_rescored {
                *r = 0;
            }
            return RetargetStats {
                rescored: 0,
                skipped: total,
                ceiling_hits: 0,
            };
        }
        let ceiling = self.cfg.cascade_ceiling;
        let over = |visits: usize, depth: usize| {
            ceiling > 0.0 && depth > 0 && visits as f64 > ceiling * depth as f64
        };
        let nshards = self.raw_shards.len();
        // Cascade cost ceiling, bound check: the sum of the dirty index
        // sizes bounds the deduped visit set from above, and every index
        // length is O(1). When even the bound says a shard's pass visits
        // more than `ceiling × depth`, skip plan construction outright —
        // at that density the plan sort alone costs more than the rescan's
        // sequential walk, which is the exact waste the ceiling exists to
        // cap. (The bound counts an entry once per dirty replica, so this
        // trips a little earlier than the deduped plan would; the fallback
        // recomputes identical decisions either way.)
        for shard in &self.raw_shards {
            let bound = shard.dirty_entries.len()
                + self
                    .dirty_nodes
                    .iter()
                    .map(|&d| shard.replica_idx[d].len())
                    .sum::<usize>();
            if over(bound, shard.len()) {
                return self.finish_at_ceiling(obs);
            }
        }
        // Per-shard visit plans, each already sorted by (OrderKey, idx):
        // dirty entries and each dirty node's replica holders are sorted
        // sets, so a merge-by-sort + dedup gives the shard's ascending
        // visit list without touching clean entries.
        let mut plan: Vec<Vec<(OrderKey, usize)>> = Vec::with_capacity(nshards);
        for shard in &self.raw_shards {
            let mut p: Vec<(OrderKey, usize)> = shard.dirty_entries.iter().copied().collect();
            // Drain every dirty node's replica set one element per turn,
            // round-robin: each set's iteration is a serial pointer chase
            // through scattered tree leaves, but the chases are mutually
            // independent, so interleaving them keeps many leaf misses in
            // flight instead of paying them one after another. Order does
            // not matter here — the plan is sorted below anyway.
            let mut iters: Vec<_> = self
                .dirty_nodes
                .iter()
                .map(|&d| shard.replica_idx[d].iter())
                .collect();
            loop {
                let mut any = false;
                for it in &mut iters {
                    if let Some(&x) = it.next() {
                        p.push(x);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            p.sort_unstable();
            p.dedup();
            plan.push(p);
        }
        // Cascade cost ceiling, exact upfront check over the deduped plans
        // (the bound check above caps the worst case; this one catches
        // passes the dedup still left too dense).
        if (0..nshards).any(|s| over(plan[s].len(), self.raw_shards[s].len())) {
            return self.finish_at_ceiling(obs);
        }
        let mut finish: Vec<Option<f64>> = vec![None; self.snap_spb.len()];
        for &d in &self.dirty_nodes {
            finish[d] = Some(self.snap_spb[d] * self.snap_queued[d]);
        }
        // Flatten the per-shard plans into the global visit order once, up
        // front. The merge touches only the plan vectors (never the slab),
        // and a flat order is what lets the walk below see its own future
        // and stream entry memory ahead of the cursor.
        let planned: usize = plan.iter().map(|p| p.len()).sum();
        let mut order: Vec<(OrderKey, Slot)> = Vec::with_capacity(planned);
        {
            let mut pos = vec![0usize; nshards];
            loop {
                let mut head: Option<(OrderKey, Slot)> = None;
                for s in 0..nshards {
                    if let Some(&(k, i)) = plan[s].get(pos[s]) {
                        let cand = (k, (s, i));
                        if head.is_none_or(|h| cand < h) {
                            head = Some(cand);
                        }
                    }
                }
                let Some((k, slot)) = head else { break };
                pos[slot.0] += 1;
                order.push((k, slot));
            }
        }
        let mut extra: BTreeSet<(OrderKey, Slot)> = BTreeSet::new();
        // Cascade growth per shard, for the mid-pass ceiling check.
        let mut touched = vec![0usize; nshards];
        let mut rescored = 0u64;
        for r in &mut self.last_shard_rescored {
            *r = 0;
        }
        let mut provenance: Vec<ProvenanceRecord> = Vec::new();
        // Cursor into `order`, and the touch-sweep frontier. The sweep
        // streams the next block of planned slots through a tight,
        // dependency-free loop so the core keeps many cache misses in
        // flight at once; the walk then scores against L2-warm lines.
        // Two designs that do NOT work: touching slots one-by-one from
        // inside the walk (the per-visit scoring work fills the reorder
        // window, collapsing the overlap to a couple of loads in flight),
        // and sweeping the whole plan up front (a large plan's early lines
        // are evicted again before the cursor reaches them). The blocked
        // sweep is the structural payoff of a flat planned order — a
        // BTree pop loop has no future slot list to stream.
        let mut oi = 0usize;
        let mut swept = 0usize;
        // Reusable per-visit score scratch (rank → (score, tier)).
        let mut scratch: Vec<(f64, u8)> = Vec::new();
        loop {
            if swept < order.len() && swept < oi + TOUCH_BLOCK / 2 {
                let hi = (oi + TOUCH_BLOCK).min(order.len());
                for &(_, (s, i)) in &order[swept..hi] {
                    touch_entry(&self.raw_shards[s], i);
                }
                for &(_, (s, i)) in &order[swept..hi] {
                    touch_buffers(&self.raw_shards[s], i);
                }
                swept = hi;
            }
            // Visit the global minimum across the planned order and the
            // cascade side set, advancing every source holding it (a
            // cascade can re-add a planned entry; it must still be
            // visited exactly once).
            let oh = order.get(oi).copied();
            let eh = extra.first().copied();
            let (key, slot) = match (oh, eh) {
                (None, None) => break,
                (Some(a), None) => {
                    oi += 1;
                    a
                }
                (None, Some(b)) => {
                    extra.pop_first();
                    b
                }
                (Some(a), Some(b)) => {
                    if a <= b {
                        oi += 1;
                        if a == b {
                            extra.pop_first();
                        }
                        a
                    } else {
                        extra.pop_first();
                        b
                    }
                }
            };
            rescored += 1;
            self.last_shard_rescored[slot.0] += 1;
            // Phase 1 — score with shared borrows only (the entry stays in
            // its slab slot; the monolithic pass moves it out and back,
            // two full-entry copies per visit this pass does not pay).
            // Scores land in a reusable scratch vector, rank by rank, with
            // non-candidate ranks explicitly reset to ∞ — exactly the
            // buffers the fresh-vector engines would have built.
            let entry = self.raw_shards[slot.0].raw_pending[slot.1]
                .as_ref()
                .expect("visited slots are live");
            let bytes = entry.migration.bytes as f64;
            let had_cache = entry.cache_valid;
            let old_target = entry.target;
            let mut best: Option<(f64, usize, NodeId, u8)> = None;
            scratch.clear();
            for rank in 0..entry.migration.replicas.len() {
                let loc = entry.migration.replicas[rank];
                let i = loc.index();
                if !self.snap_candidate[i] {
                    scratch.push((f64::INFINITY, 0));
                    continue;
                }
                let (score, tier) = match finish[i] {
                    Some(f) => tier_min(&self.snap_tiers[i], f, self.snap_spb[i] * bytes),
                    None => {
                        if had_cache && entry.scores[rank].is_finite() {
                            (entry.scores[rank], entry.tier_of[rank])
                        } else {
                            tier_min(
                                &self.snap_tiers[i],
                                self.finish_before(i, (key, slot)),
                                self.snap_spb[i] * bytes,
                            )
                        }
                    }
                };
                scratch.push((score, tier));
                if better(score, rank, best) {
                    best = Some((score, rank, loc, tier));
                }
            }
            let new_target = best.map(|(_, _, n, _)| n);
            if old_target != new_target {
                for moved in [old_target, new_target].into_iter().flatten() {
                    let i = moved.index();
                    if finish[i].is_none() {
                        finish[i] = Some(self.finish_before(i, (key, slot)));
                        let before = extra.len();
                        self.for_replicas_after(i, (key, slot), &mut extra);
                        touched[slot.0] += extra.len() - before;
                    }
                }
            }
            // Phase 2 — commit: write the scratch scores into the entry's
            // buffers and apply the winner, splitting the shard borrow so
            // the bind-queue update lands beside the in-place entry write.
            let shard = &mut self.raw_shards[slot.0];
            let entry = shard.raw_pending[slot.1]
                .as_mut()
                .expect("visited slots are live");
            for (rank, &(score, tier)) in scratch.iter().enumerate() {
                entry.scores[rank] = score;
                entry.tier_of[rank] = tier;
            }
            match best {
                Some((f, _, node, tier)) => {
                    entry.target = Some(node);
                    entry.target_tier = tier;
                    entry.winner_score = f;
                    if old_target != Some(node) {
                        obs.migration_targeted(entry.migration.id.0, node);
                    }
                }
                None => {
                    entry.target = None; // all replicas down right now
                    entry.target_tier = 0;
                    entry.winner_score = f64::INFINITY;
                }
            }
            entry.cache_valid = true;
            if recording {
                provenance.push(provenance_record(entry));
            }
            if new_target != old_target {
                if let Some(t) = old_target {
                    shard.targeted[t.index()].remove(&(key, slot.1));
                }
                if let Some(t) = new_target {
                    shard.targeted[t.index()].insert((key, slot.1));
                }
            }
            if let Some((f, _, w, _)) = best {
                if finish[w.index()].is_some() {
                    finish[w.index()] = Some(f);
                }
            }
            // Mid-pass ceiling check: a cascade that keeps fanning out can
            // blow past the upfront estimate. Decisions committed so far
            // are final-correct, so switching to the rescan mid-walk is
            // safe (it recomputes them identically).
            if over(
                plan[slot.0].len() + touched[slot.0],
                self.raw_shards[slot.0].len(),
            ) {
                return self.finish_at_ceiling(obs);
            }
        }
        self.dirty_nodes.clear();
        for shard in &mut self.raw_shards {
            shard.dirty_entries.clear();
        }
        let skipped = total - rescored;
        if recording {
            obs.retarget_pass(provenance, rescored, skipped);
        }
        RetargetStats {
            rescored,
            skipped,
            ceiling_hits: 0,
        }
    }

    /// Nothing changed since the last pass anywhere.
    fn steady_state(&self) -> bool {
        self.dirty_nodes.is_empty() && self.raw_shards.iter().all(|s| s.dirty_entries.is_empty())
    }

    /// Abandon an over-ceiling incremental walk and finish the pass with
    /// the reference rescan. Any targets the abandoned prefix committed
    /// are recomputed identically (so no duplicate `migration_targeted`
    /// events fire — the winners already match); partial provenance is
    /// discarded in favor of the rescan's complete batch.
    fn finish_at_ceiling(&mut self, obs: &ObsHandle) -> RetargetStats {
        obs.counter_add("sched.cascade_ceiling", 1);
        let mut stats = self.pass_reference(obs);
        stats.ceiling_hits = 1;
        stats
    }

    /// Commit a scored entry's winner: update the target, maintain the
    /// per-node bind queues, cache the winner score, and emit the span
    /// event when the target changed.
    fn apply_winner(
        &mut self,
        entry: &mut Entry,
        key: OrderKey,
        slot: Slot,
        best: Option<(f64, usize, NodeId, u8)>,
        obs: &ObsHandle,
    ) {
        let old_target = entry.target;
        match best {
            Some((f, _, node, tier)) => {
                entry.target = Some(node);
                entry.target_tier = tier;
                entry.winner_score = f;
                if old_target != Some(node) {
                    obs.migration_targeted(entry.migration.id.0, node);
                }
            }
            None => {
                entry.target = None; // all replicas down right now
                entry.target_tier = 0;
                entry.winner_score = f64::INFINITY;
            }
        }
        if entry.target != old_target {
            let shard = &mut self.raw_shards[slot.0];
            if let Some(t) = old_target {
                shard.targeted[t.index()].remove(&(key, slot.1));
            }
            if let Some(t) = entry.target {
                shard.targeted[t.index()].insert((key, slot.1));
            }
        }
    }
}

/// Per-shard upper bound for "strictly before this global position".
type Bound = (OrderKey, usize);

/// A provenance record for one scored entry, with candidates in
/// `(node, rank)` order. Pass index, timestamps, and the pass-level
/// rescored/skipped counts are stamped by the recorder.
fn provenance_record(entry: &Entry) -> ProvenanceRecord {
    let mut cands: Vec<(u32, usize)> = entry
        .migration
        .replicas
        .iter()
        .enumerate()
        .filter(|&(rank, _)| entry.scores[rank].is_finite())
        .map(|(rank, loc)| (loc.0, rank))
        .collect();
    cands.sort_unstable();
    ProvenanceRecord {
        at: SimTime::ZERO, // recorder stamps time + pass
        pass: 0,
        migration: entry.migration.id.0,
        block: entry.migration.block.0,
        bytes: entry.migration.bytes,
        candidates: cands
            .into_iter()
            .map(|(node, rank)| CandidateScore {
                node,
                rank: rank as u32,
                est_finish_secs: entry.scores[rank],
                tier: entry.tier_of[rank],
            })
            .collect(),
        winner: entry.target.map(|n| n.0),
        rescored: 0,
        skipped: 0,
    }
}
