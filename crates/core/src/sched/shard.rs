//! One range shard of the pending store.
//!
//! A [`Shard`] owns the slab, block index, admission queue, per-node
//! bind queues, and dirty-entry set for its slice of the block-id
//! space. The [`Scheduler`](super::Scheduler) composes `S` of these and
//! presents the same single-store API as the old monolithic layout; a
//! one-shard scheduler *is* the old layout, index for index.
//!
//! All fields are `pub(super)`: shard internals are only ever touched
//! from within `crates/core/src/sched` (the `pending-fence` lint keeps
//! the rest of the workspace on the Scheduler API).

use super::{Entry, OrderKey};
use dyrs_dfs::BlockId;
use std::collections::{BTreeMap, BTreeSet};

/// One shard of pending state. Index pairs are `(OrderKey, idx)` with
/// `idx` local to this shard's slab.
#[derive(Debug, Clone)]
pub(super) struct Shard {
    /// Entry slab; `None` slots are free (LIFO reuse via `free`).
    pub(super) raw_pending: Vec<Option<Entry>>,
    /// Free slots in `raw_pending`.
    pub(super) free: Vec<usize>,
    /// block → slot for blocks mapped to this shard.
    pub(super) by_block: BTreeMap<BlockId, usize>,
    /// This shard's slice of the admission order.
    pub(super) queue: BTreeSet<(OrderKey, usize)>,
    /// Per-node bind queues (entries targeted at the node).
    pub(super) targeted: Vec<BTreeSet<(OrderKey, usize)>>,
    /// Per-node replica membership (Naive-policy bind queue and the
    /// incremental engines' dirty-node walk set).
    pub(super) replica_idx: Vec<BTreeSet<(OrderKey, usize)>>,
    /// Running total of pending bytes in this shard.
    pub(super) pending_bytes: u64,
    /// Entries admitted (or re-admitted) here since the last pass.
    pub(super) dirty_entries: BTreeSet<(OrderKey, usize)>,
}

impl Shard {
    /// An empty shard for a cluster of `num_nodes` slaves.
    pub(super) fn new(num_nodes: usize) -> Self {
        Shard {
            raw_pending: Vec::new(),
            free: Vec::new(),
            by_block: BTreeMap::new(),
            queue: BTreeSet::new(),
            targeted: vec![BTreeSet::new(); num_nodes],
            replica_idx: vec![BTreeSet::new(); num_nodes],
            pending_bytes: 0,
            dirty_entries: BTreeSet::new(),
        }
    }

    /// Store `entry` in the slab (LIFO slot reuse) and return its slot.
    /// Index maintenance is the caller's job — the caller knows the key
    /// and which indexes the entry belongs in.
    pub(super) fn alloc(&mut self, entry: Entry) -> usize {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.raw_pending[i].is_none(), "free list slot is live");
                self.raw_pending[i] = Some(entry);
                i
            }
            None => {
                self.raw_pending.push(Some(entry));
                self.raw_pending.len() - 1
            }
        }
    }

    /// Number of live entries in this shard.
    pub(super) fn len(&self) -> usize {
        self.queue.len()
    }

    /// Drop all pending state in this shard.
    pub(super) fn clear(&mut self) {
        self.raw_pending.clear();
        self.free.clear();
        self.by_block.clear();
        self.queue.clear();
        for t in &mut self.targeted {
            t.clear();
        }
        for r in &mut self.replica_idx {
            r.clear();
        }
        self.pending_bytes = 0;
        self.dirty_entries.clear();
    }
}
