//! K-way merge over per-shard index heads.
//!
//! Every shard keeps its slice of an index (`queue`, `targeted[n]`,
//! `replica_idx[n]`) as a `BTreeSet<(OrderKey, idx)>`. Draining the
//! global admission order is then a merge over the S per-shard heads:
//! each step takes the minimum `(OrderKey, shard, idx)` across shards.
//! With one shard this degenerates to plain in-order iteration of the
//! single set — bit-identical to the monolithic layout.
//!
//! S is small (the config default is 1; benches use ≤ 32), so a linear
//! scan over the heads beats a loser tree: the scan is branch-predictable
//! and allocation-free, and the candidates fit in a cache line or two.
//!
//! Ties on the full `(OrderKey, shard, idx)` triple cannot occur — a
//! `(key, idx)` pair appears in at most one shard, and within a shard the
//! set dedups — so the merge is a strict total order. `OrderKey` ties
//! *across* shards (possible only with caller-supplied duplicate seqs;
//! the master mints unique seqs) break toward the lower shard, matching
//! the slot-index tiebreak the monolithic layout used.

use super::shard::Shard;
use super::{OrderKey, Slot};
use std::collections::btree_set;
use std::iter::Peekable;

/// Merged in-order iteration over one index across all shards.
pub(super) struct MergeCursor<'a> {
    heads: Vec<Peekable<btree_set::Iter<'a, (OrderKey, usize)>>>,
}

impl<'a> MergeCursor<'a> {
    /// Merge the given per-shard sets (one per shard, in shard order).
    pub(super) fn new(
        sets: impl Iterator<Item = &'a std::collections::BTreeSet<(OrderKey, usize)>>,
    ) -> Self {
        MergeCursor {
            heads: sets.map(|s| s.iter().peekable()).collect(),
        }
    }
}

impl Iterator for MergeCursor<'_> {
    type Item = (OrderKey, Slot);

    fn next(&mut self) -> Option<(OrderKey, Slot)> {
        let mut best: Option<(OrderKey, Slot)> = None;
        for (shard, head) in self.heads.iter_mut().enumerate() {
            if let Some(&&(key, idx)) = head.peek() {
                let cand = (key, (shard, idx));
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        let (key, slot) = best?;
        self.heads[slot.0].next();
        Some((key, slot))
    }
}

/// The global admission order: merge of every shard's `queue`.
pub(super) fn merged_queue<'a>(shards: &'a [Shard]) -> MergeCursor<'a> {
    MergeCursor::new(shards.iter().map(|s| &s.queue))
}

/// Merged ascending iteration over every shard's `by_block` keys. Shards
/// stripe the block-id space, so concatenation is not sorted — this
/// merges the per-shard sorted key streams instead.
pub(super) struct BlockMerge<'a> {
    block_heads: Vec<Peekable<std::collections::btree_map::Keys<'a, dyrs_dfs::BlockId, usize>>>,
}

impl<'a> BlockMerge<'a> {
    pub(super) fn new(shards: &'a [Shard]) -> Self {
        BlockMerge {
            block_heads: shards
                .iter()
                .map(|s| s.by_block.keys().peekable())
                .collect(),
        }
    }
}

impl Iterator for BlockMerge<'_> {
    type Item = dyrs_dfs::BlockId;

    fn next(&mut self) -> Option<dyrs_dfs::BlockId> {
        let mut best: Option<(dyrs_dfs::BlockId, usize)> = None;
        for (shard, head) in self.block_heads.iter_mut().enumerate() {
            if let Some(&&b) = head.peek() {
                if best.is_none_or(|(bb, _)| b < bb) {
                    best = Some((b, shard));
                }
            }
        }
        let (block, shard) = best?;
        self.block_heads[shard].next();
        Some(block)
    }
}
