//! Indexed, range-sharded pending-migration scheduler (paper §III-D,
//! scaled up).
//!
//! The paper's master keeps "a list of pending migrations" and rescans it
//! wholesale: every Algorithm 1 pass rescores every entry, and every
//! slave pull walks the whole list. That is fine for the paper's 50 GB
//! bar but it is the hottest path in the system, so this module replaces
//! the flat list with an indexed store partitioned into range shards:
//!
//! * each [`shard::Shard`] owns a **slab** of entries, a block → slot
//!   [`BTreeMap`], its slice of the global **admission queue** (ordered
//!   by the configured [`MigrationOrder`] encoded as an [`OrderKey`], so
//!   the BTree *is* the sort), per-node **bind queues** (`targeted`, and
//!   `replica_idx` for the untargeted Naive policy), and its own
//!   dirty-entry set;
//! * blocks map to shards by id range
//!   (`(block >> SHARD_RANGE_BITS) % S`), and every cross-shard walk —
//!   pulls, checkpoints, the reference rescan — goes through a small
//!   **K-way merge** over per-shard heads ([`merge`]), so drain order is
//!   identical at every shard count;
//! * the Algorithm 1 engines (see [`engine`]) score from per-node
//!   snapshots and dirty sets; the full-rescan pass is kept as a
//!   reference implementation behind [`SchedEngine::Reference`], and the
//!   shard-local pass ([`SchedEngine::Sharded`]) adds the cascade cost
//!   ceiling.
//!
//! Everything is deterministic: slots are reused LIFO within each shard,
//! all indexes are BTree-ordered, and the incremental engines are
//! bit-identical to the reference pass at every shard count (asserted by
//! `crates/core/tests/sched_equivalence.rs`).
//!
//! The raw shard state (`raw_shards`, and each shard's `raw_pending`)
//! must not be touched outside this module — `dyrs-verify`'s
//! `pending-fence` lint enforces that the rest of the workspace goes
//! through the Scheduler API.

mod engine;
mod merge;
mod shard;

use crate::config::{SchedEngine, SchedulerConfig};
use crate::master::JobHint;
use crate::policy::MigrationOrder;
use crate::types::{JobRef, Migration, MigrationId};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use shard::Shard;
use simkit::SimTime;
use std::collections::BTreeSet;

/// Global address of a live entry: `(shard, slot-within-shard)`.
///
/// Everywhere an index pairs an [`OrderKey`] with a slot, the pair orders
/// by `(key, shard, idx)` — with unique keys (the master mints unique
/// seqs) the slot half never decides, and with one shard it degenerates
/// to the monolithic `(key, idx)` order.
pub(crate) type Slot = (usize, usize);

/// Blocks map to shards in contiguous runs of 64 ids striped round-robin
/// (`(block >> 6) % S`): sequential blocks of one file stay shard-local,
/// while any large id range still balances across all shards.
const SHARD_RANGE_BITS: u32 = 6;

/// Position of an entry in the admission order, independent of the
/// discipline: the BTree indexes sort by `(OrderKey, slot)` and binding /
/// retargeting walk that order directly.
///
/// `primary` encodes the discipline's sort key (`0` for FIFO,
/// `hint.total_bytes` for SJF, `hint.expected_launch` in microseconds for
/// EDF — lossless, since `SimTime` is microseconds internally) and `seq`
/// is the arrival sequence, so ties break exactly like the old stable
/// sort over `(key, seq)` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct OrderKey {
    primary: u64,
    seq: u64,
}

impl OrderKey {
    fn new(order: MigrationOrder, hint: &JobHint, seq: u64) -> Self {
        let primary = match order {
            MigrationOrder::Fifo => 0,
            MigrationOrder::SmallestJobFirst => hint.total_bytes,
            MigrationOrder::EarliestDeadlineFirst => hint.expected_launch.as_micros(),
        };
        OrderKey { primary, seq }
    }
}

/// One pending migration plus the scheduler's cached scoring state.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// The migration being scheduled.
    pub(crate) migration: Migration,
    /// Algorithm 1's current choice of source node, if any.
    pub(crate) target: Option<NodeId>,
    /// Arrival sequence (FIFO key and stable tie-break).
    pub(crate) seq: u64,
    /// Requesting job's scheduling hint.
    pub(crate) hint: JobHint,
    /// Retry backoff: the entry may not bind before this instant.
    pub(crate) not_before: SimTime,
    /// Destination buffer tier of the current winner (tier-aware
    /// Algorithm 1 scores tier × replica pairs; this is the tier half of
    /// the winning pair). 0 whenever only memory is eligible.
    pub(crate) target_tier: u8,
    /// Cached per-replica finish-time scores from the last pass that
    /// visited this entry, aligned with `migration.replicas` (∞ for
    /// non-candidates). Each is already the minimum over the node's
    /// eligible destination tiers. Valid only while `cache_valid`.
    scores: Vec<f64>,
    /// The destination tier behind each cached score, aligned with
    /// `scores` (which tier won the per-rank tier minimum).
    tier_of: Vec<u8>,
    /// The winner's cached score (∞ when untargeted); this is the node's
    /// finish-time trajectory *at this queue position*, which is what the
    /// incremental engine reads back via the `targeted` index.
    winner_score: f64,
    /// False until the first pass scores the entry (new admissions).
    cache_valid: bool,
}

/// What one retarget pass did — how many pending entries it rescored and
/// how many it proved untouched and skipped. A full reference pass always
/// reports `skipped == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetargetStats {
    /// Entries whose candidate scores were recomputed this pass.
    pub rescored: u64,
    /// Entries left untouched (their decision provably cannot change).
    pub skipped: u64,
    /// 1 if the pass hit the cascade cost ceiling and finished with the
    /// reference walk (Sharded engine only; decisions are unaffected).
    pub ceiling_hits: u64,
}

/// The indexed pending store. Owned by the master; every read or write of
/// pending-migration state goes through this API.
pub(crate) struct Scheduler {
    /// The range shards. All raw iteration over shard internals lives in
    /// this module (`pending-fence`).
    raw_shards: Vec<Shard>,
    /// Cluster width (shards carry per-node index vectors of this size).
    num_nodes: usize,
    /// Active admission discipline.
    order: MigrationOrder,
    /// Engine selection, shard count, and dirty-set thresholds.
    cfg: SchedulerConfig,
    /// Per-node scoring snapshot: seconds-per-byte estimate. All engines
    /// score exclusively from the snapshot, so reference and incremental
    /// passes see identical inputs at any `spb_epsilon`.
    snap_spb: Vec<f64>,
    /// Per-node scoring snapshot: queued bytes.
    snap_queued: Vec<f64>,
    /// Per-node scoring snapshot: Algorithm 1 candidacy (up && targetable).
    snap_candidate: Vec<bool>,
    /// Per-node scoring snapshot: eligible destination buffer tiers as
    /// `(tier, write_factor)` pairs in ascending tier order. The legacy
    /// default is `[(0, 1.0)]` — memory only, factor exactly 1.0, which
    /// keeps every score bit-identical to the pre-tier arithmetic.
    snap_tiers: Vec<Vec<(u8, f64)>>,
    /// Nodes whose snapshot changed since the last pass (global: a node's
    /// replica holders can live in any shard).
    dirty_nodes: BTreeSet<usize>,
    /// Entries each shard rescored in the last pass (per-shard
    /// `sched.dirty_entries` gauge feed).
    last_shard_rescored: Vec<u64>,
}

impl Scheduler {
    /// An empty scheduler for `num_nodes` slaves with a uniform
    /// seconds-per-byte prior of `default_spb`.
    pub(crate) fn new(num_nodes: usize, default_spb: f64) -> Self {
        Scheduler {
            raw_shards: vec![Shard::new(num_nodes)],
            num_nodes,
            order: MigrationOrder::Fifo,
            cfg: SchedulerConfig::default(),
            snap_spb: vec![default_spb; num_nodes],
            snap_queued: vec![0.0; num_nodes],
            snap_candidate: vec![true; num_nodes],
            snap_tiers: vec![vec![(0, 1.0)]; num_nodes],
            dirty_nodes: BTreeSet::new(),
            last_shard_rescored: vec![0],
        }
    }

    /// The shard a block's pending entry lives in.
    #[inline]
    fn shard_of(&self, block: BlockId) -> usize {
        ((block.0 >> SHARD_RANGE_BITS) % self.raw_shards.len() as u64) as usize
    }

    // ------------------------------------------------------------------
    // configuration
    // ------------------------------------------------------------------

    /// Select the retarget engine, shard count, and dirty thresholds.
    ///
    /// A shard-count change with entries present re-shards in place:
    /// every entry (with its target, caches, and dirtiness) migrates to
    /// its new shard in admission order, so the store's observable state
    /// — drain order, targets, pending depth — is untouched.
    pub(crate) fn set_config(&mut self, cfg: SchedulerConfig) {
        self.cfg = cfg;
        self.cfg.shards = cfg.shards.max(1);
        let want = self.cfg.shards;
        if want == self.raw_shards.len() {
            return;
        }
        let order: Vec<(OrderKey, Slot)> = merge::merged_queue(&self.raw_shards).collect();
        let mut moved: Vec<(Entry, bool)> = Vec::with_capacity(order.len());
        for &(key, (s, idx)) in &order {
            let dirty = self.raw_shards[s].dirty_entries.contains(&(key, idx));
            let entry = self.raw_shards[s].raw_pending[idx]
                .take()
                .expect("queued slots are live");
            moved.push((entry, dirty));
        }
        self.raw_shards = vec![Shard::new(self.num_nodes); want];
        self.last_shard_rescored = vec![0; want];
        for (entry, dirty) in moved {
            self.insert_entry(entry, dirty);
        }
    }

    /// The active scheduler configuration.
    pub(crate) fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Select the admission discipline. Must be called before entries are
    /// admitted (the master configures order at startup, like the old
    /// `sort_pending` path assumed stable input).
    pub(crate) fn set_order(&mut self, order: MigrationOrder) {
        debug_assert!(
            self.len() == 0,
            "order change with entries enqueued would not re-key them"
        );
        self.order = order;
    }

    /// The active admission discipline.
    pub(crate) fn order(&self) -> MigrationOrder {
        self.order
    }

    // ------------------------------------------------------------------
    // node snapshot — the engines' only scoring input
    // ------------------------------------------------------------------

    /// Update a node's scoring snapshot from the master's heartbeat view.
    /// Queued-byte changes always take effect; the spb estimate is gated
    /// by `spb_epsilon` (relative) so a jittering estimator does not dirty
    /// the node every heartbeat. `spb_epsilon = 0` keeps the snapshot an
    /// exact mirror.
    pub(crate) fn set_node_load(&mut self, node: usize, spb: f64, queued_bytes: f64) {
        let eps = self.cfg.spb_epsilon;
        let cur = self.snap_spb[node];
        if spb != cur && (eps <= 0.0 || (spb - cur).abs() > eps * cur.abs()) {
            self.snap_spb[node] = spb;
            self.dirty_nodes.insert(node);
        }
        if self.snap_queued[node] != queued_bytes {
            self.snap_queued[node] = queued_bytes;
            self.dirty_nodes.insert(node);
        }
    }

    /// Update a node's Algorithm 1 candidacy (liveness ∧ detector health).
    pub(crate) fn set_node_candidacy(&mut self, node: usize, candidate: bool) {
        if self.snap_candidate[node] != candidate {
            self.snap_candidate[node] = candidate;
            self.dirty_nodes.insert(node);
        }
    }

    /// Update a node's eligible destination tiers (tier hardware is
    /// static, but the active tier policy picks which tiers Algorithm 1
    /// may target). A change dirties the node like any snapshot change.
    pub(crate) fn set_node_tiers(&mut self, node: usize, tiers: Vec<(u8, f64)>) {
        debug_assert!(
            tiers.windows(2).all(|w| w[0].0 < w[1].0),
            "destination tiers must be ascending and distinct"
        );
        debug_assert!(!tiers.is_empty(), "a node needs at least one dest tier");
        if self.snap_tiers[node] != tiers {
            self.snap_tiers[node] = tiers;
            self.dirty_nodes.insert(node);
        }
    }

    /// The node's eligible destination tiers (exposed for auditing).
    pub(crate) fn node_tiers(&self, node: usize) -> &[(u8, f64)] {
        &self.snap_tiers[node]
    }

    /// The node's scoring snapshot, `(spb, queued_bytes, candidate)`
    /// (exposed for auditing).
    pub(crate) fn node_snapshot(&self, node: usize) -> (f64, f64, bool) {
        (
            self.snap_spb[node],
            self.snap_queued[node],
            self.snap_candidate[node],
        )
    }

    // ------------------------------------------------------------------
    // admission / removal
    // ------------------------------------------------------------------

    /// Admit a migration. The caller guarantees the block is not already
    /// pending (checked by `contains_block`).
    pub(crate) fn insert(
        &mut self,
        migration: Migration,
        seq: u64,
        hint: JobHint,
        not_before: SimTime,
    ) {
        debug_assert!(!self.contains_block(migration.block));
        let scores = vec![f64::INFINITY; migration.replicas.len()];
        let tier_of = vec![0; migration.replicas.len()];
        let entry = Entry {
            migration,
            target: None,
            seq,
            hint,
            not_before,
            target_tier: 0,
            scores,
            tier_of,
            winner_score: f64::INFINITY,
            cache_valid: false,
        };
        self.insert_entry(entry, true);
    }

    /// Link a fully-formed entry into its shard's slab and indexes
    /// (including the bind queue if it carries a target), marking it
    /// dirty when asked. Admission and re-sharding both land here.
    fn insert_entry(&mut self, entry: Entry, dirty: bool) {
        let key = OrderKey::new(self.order, &entry.hint, entry.seq);
        let s = self.shard_of(entry.migration.block);
        let shard = &mut self.raw_shards[s];
        let idx = shard.alloc(entry);
        let e = shard.raw_pending[idx].as_ref().expect("just inserted");
        shard.pending_bytes += e.migration.bytes;
        shard.by_block.insert(e.migration.block, idx);
        shard.queue.insert((key, idx));
        for &r in &e.migration.replicas {
            shard.replica_idx[r.index()].insert((key, idx));
        }
        if let Some(t) = e.target {
            shard.targeted[t.index()].insert((key, idx));
        }
        if dirty {
            shard.dirty_entries.insert((key, idx));
        }
    }

    /// Whether `block` is pending.
    pub(crate) fn contains_block(&self, block: BlockId) -> bool {
        self.raw_shards[self.shard_of(block)]
            .by_block
            .contains_key(&block)
    }

    /// Add a job reference to the pending entry for `block` (no-op if the
    /// job is already referenced). Job references do not affect scoring.
    pub(crate) fn add_job_ref(&mut self, block: BlockId, jref: JobRef) {
        let s = self.shard_of(block);
        let shard = &mut self.raw_shards[s];
        if let Some(&idx) = shard.by_block.get(&block) {
            let e = shard.raw_pending[idx].as_mut().expect("indexed slot live");
            if !e.migration.jobs.iter().any(|r| r.job == jref.job) {
                e.migration.jobs.push(jref);
            }
        }
    }

    /// Drop `job`'s reference from the pending entry for `block`. If that
    /// leaves the entry with no interested job it is removed; the removed
    /// migration's id is returned so the caller can close its span.
    pub(crate) fn drop_job_ref(&mut self, block: BlockId, job: JobId) -> Option<MigrationId> {
        let s = self.shard_of(block);
        let &idx = self.raw_shards[s].by_block.get(&block)?;
        let e = self.raw_shards[s].raw_pending[idx]
            .as_mut()
            .expect("indexed slot live");
        e.migration.jobs.retain(|r| r.job != job);
        if e.migration.jobs.is_empty() {
            let entry = self.remove_slot((s, idx));
            Some(entry.migration.id)
        } else {
            None
        }
    }

    /// Cancel the pending migration for `block` (missed read), returning
    /// the removed entry if one was pending.
    pub(crate) fn remove_block(&mut self, block: BlockId) -> Option<Entry> {
        let s = self.shard_of(block);
        let idx = self.raw_shards[s].by_block.get(&block).copied()?;
        Some(self.remove_slot((s, idx)))
    }

    /// Unlink `slot` from every index in its shard and free it.
    fn remove_slot(&mut self, slot: Slot) -> Entry {
        let (s, idx) = slot;
        let shard = &mut self.raw_shards[s];
        let entry = shard.raw_pending[idx]
            .take()
            .expect("removing a live entry");
        let key = OrderKey::new(self.order, &entry.hint, entry.seq);
        shard.queue.remove(&(key, idx));
        shard.dirty_entries.remove(&(key, idx));
        shard.by_block.remove(&entry.migration.block);
        for &r in &entry.migration.replicas {
            shard.replica_idx[r.index()].remove(&(key, idx));
        }
        if let Some(t) = entry.target {
            shard.targeted[t.index()].remove(&(key, idx));
            // The node's downstream finish-time trajectory shrinks; every
            // entry scored after this position must be revisited.
            self.dirty_nodes.insert(t.index());
        }
        shard.pending_bytes -= entry.migration.bytes;
        shard.free.push(idx);
        entry
    }

    /// Drop all pending state (master restart). Snapshots return to the
    /// prior; nothing is left to rescore.
    pub(crate) fn reset(&mut self, default_spb: f64) {
        for shard in &mut self.raw_shards {
            shard.clear();
        }
        for s in &mut self.snap_spb {
            *s = default_spb;
        }
        for q in &mut self.snap_queued {
            *q = 0.0;
        }
        // Candidacy resets with the detector state (everyone healthy); the
        // master re-syncs liveness right after. `snap_tiers` survives the
        // restart untouched: tier stacks are hardware configuration, not
        // soft state.
        for c in &mut self.snap_candidate {
            *c = true;
        }
        self.dirty_nodes.clear();
        for r in &mut self.last_shard_rescored {
            *r = 0;
        }
    }

    // ------------------------------------------------------------------
    // binding — the pull path
    // ------------------------------------------------------------------

    /// Pop up to `limit` entries eligible to bind on `node` right now, in
    /// admission order: entries targeted at the node (`targeted = true`,
    /// Dyrs) or entries with any replica on it (Naive), skipping entries
    /// still inside their retry backoff. Skipped and unpicked entries stay
    /// queued in their original positions. Cross-shard order comes from
    /// the K-way merge over the per-shard bind queues.
    pub(crate) fn pull(
        &mut self,
        node: NodeId,
        targeted: bool,
        now: SimTime,
        limit: usize,
    ) -> Vec<Entry> {
        if limit == 0 {
            return Vec::new();
        }
        let n = node.index();
        let mut picked: Vec<Slot> = Vec::new();
        let cursor = merge::MergeCursor::new(self.raw_shards.iter().map(|sh| {
            if targeted {
                &sh.targeted[n]
            } else {
                &sh.replica_idx[n]
            }
        }));
        for (_, slot) in cursor {
            if picked.len() == limit {
                break;
            }
            let e = self.raw_shards[slot.0].raw_pending[slot.1]
                .as_ref()
                .expect("indexed slot live");
            // retry-backoff entries (`not_before`) are not yet eligible
            if e.not_before <= now {
                picked.push(slot);
            }
        }
        picked
            .into_iter()
            .map(|slot| self.remove_slot(slot))
            .collect()
    }

    // ------------------------------------------------------------------
    // read-only views
    // ------------------------------------------------------------------

    /// Number of pending entries.
    pub(crate) fn len(&self) -> usize {
        self.raw_shards.iter().map(Shard::len).sum()
    }

    /// Total pending bytes.
    pub(crate) fn bytes(&self) -> u64 {
        self.raw_shards.iter().map(|s| s.pending_bytes).sum()
    }

    /// Number of shards the pending store is partitioned into.
    pub(crate) fn shard_count(&self) -> usize {
        self.raw_shards.len()
    }

    /// Per-shard pending depth, in shard order (`sched.pending_depth`
    /// gauge feed).
    pub(crate) fn shard_depths(&self) -> Vec<usize> {
        self.raw_shards.iter().map(Shard::len).collect()
    }

    /// Per-shard rescored counts from the most recent retarget pass, in
    /// shard order (`sched.dirty_entries` gauge feed).
    pub(crate) fn shard_rescored(&self) -> &[u64] {
        &self.last_shard_rescored
    }

    /// Number of pending entries currently targeted at `node` — the depth
    /// of its bind queue. A draining node may only be decommissioned once
    /// this reaches zero (its pending work has been re-targeted away).
    pub(crate) fn targeted_len(&self, node: NodeId) -> usize {
        self.raw_shards
            .iter()
            .map(|s| s.targeted[node.index()].len())
            .sum()
    }

    /// The node `block` is currently targeted at, if pending and targeted.
    pub(crate) fn target_of(&self, block: BlockId) -> Option<NodeId> {
        let s = self.shard_of(block);
        let &idx = self.raw_shards[s].by_block.get(&block)?;
        self.raw_shards[s].raw_pending[idx]
            .as_ref()
            .expect("indexed slot live")
            .target
    }

    /// Pending block ids in ascending order (merged across shards).
    pub(crate) fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        merge::BlockMerge::new(&self.raw_shards)
    }

    /// Pending entries in admission order (merged across shards).
    pub(crate) fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        merge::merged_queue(&self.raw_shards).map(|(_, (s, idx))| {
            self.raw_shards[s].raw_pending[idx]
                .as_ref()
                .expect("queued slot live")
        })
    }

    // ------------------------------------------------------------------
    // audit
    // ------------------------------------------------------------------

    /// Index invariants: every index agrees with its shard's slab, the
    /// range map holds, bytes and free slots balance, and dirty entries
    /// reference live slots.
    pub(crate) fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "sched";
        for (sno, shard) in self.raw_shards.iter().enumerate() {
            let live = shard.raw_pending.iter().flatten().count();
            report.check(
                shard.queue.len() == live && shard.by_block.len() == live,
                c,
                "queue and block index cover exactly the live slots",
                || {
                    format!(
                        "shard {sno}: live {live}, queue {}, by_block {}",
                        shard.queue.len(),
                        shard.by_block.len()
                    )
                },
            );
            report.check(
                shard.free.len() + live == shard.raw_pending.len(),
                c,
                "free list and live slots partition the slab",
                || {
                    format!(
                        "shard {sno}: free {} + live {live} != slab {}",
                        shard.free.len(),
                        shard.raw_pending.len()
                    )
                },
            );
            let mut bytes = 0u64;
            for &(key, idx) in &shard.queue {
                let Some(e) = shard.raw_pending.get(idx).and_then(|s| s.as_ref()) else {
                    report.check(false, c, "queued slots are live", || {
                        format!("shard {sno}: queue references freed slot {idx}")
                    });
                    continue;
                };
                bytes += e.migration.bytes;
                report.check(
                    self.shard_of(e.migration.block) == sno,
                    c,
                    "entries live in their range shard",
                    || format!("{} stored in shard {sno}", e.migration.block),
                );
                report.check(
                    OrderKey::new(self.order, &e.hint, e.seq) == key,
                    c,
                    "queue keys match their entries",
                    || format!("{} queued under a stale key", e.migration.block),
                );
                report.check(
                    shard.by_block.get(&e.migration.block) == Some(&idx),
                    c,
                    "block index points back at the slot",
                    || format!("{} not indexed at slot {idx}", e.migration.block),
                );
                for &r in &e.migration.replicas {
                    report.check(
                        shard.replica_idx[r.index()].contains(&(key, idx)),
                        c,
                        "replica index covers every replica holder",
                        || format!("{} missing from replica index of {r}", e.migration.block),
                    );
                }
                match e.target {
                    Some(t) => report.check(
                        shard.targeted[t.index()].contains(&(key, idx)),
                        c,
                        "targeted entries sit in their node's bind queue",
                        || format!("{} targeted at {t} but not in its queue", e.migration.block),
                    ),
                    None => report.check(
                        !e.cache_valid || e.winner_score.is_infinite(),
                        c,
                        "untargeted entries carry no finite winner score",
                        || format!("{} untargeted with a winner score", e.migration.block),
                    ),
                }
            }
            report.check(
                bytes == shard.pending_bytes,
                c,
                "pending byte total matches the entries",
                || {
                    format!(
                        "shard {sno}: counted {bytes}, cached {}",
                        shard.pending_bytes
                    )
                },
            );
            let targeted_total: usize = shard.targeted.iter().map(BTreeSet::len).sum();
            report.check(
                targeted_total
                    == shard
                        .queue
                        .iter()
                        .filter(|&&(_, i)| {
                            shard.raw_pending[i]
                                .as_ref()
                                .is_some_and(|e| e.target.is_some())
                        })
                        .count(),
                c,
                "bind queues hold exactly the targeted entries",
                || format!("shard {sno}: {targeted_total} bind-queue entries"),
            );
            for d in &shard.dirty_entries {
                report.check(
                    shard.queue.contains(d),
                    c,
                    "dirty entries reference queued work",
                    || format!("shard {sno}: stale dirty entry at slot {}", d.1),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EvictionMode;
    use simkit::audit::AuditReport;

    fn mig(id: u64, block: u64, replicas: &[u32]) -> Migration {
        Migration {
            id: MigrationId(id),
            block: BlockId(block),
            bytes: 256 << 20,
            jobs: vec![JobRef {
                job: JobId(1),
                eviction: EvictionMode::Implicit,
            }],
            replicas: replicas.iter().map(|&n| NodeId(n)).collect(),
            attempt: 0,
            dest_tier: 0,
        }
    }

    fn sched() -> Scheduler {
        Scheduler::new(4, 1.0 / (140.0 * (1u64 << 20) as f64))
    }

    fn slot_of(s: &Scheduler, b: u64) -> (usize, usize) {
        let sno = s.shard_of(BlockId(b));
        let idx = *s.raw_shards[sno]
            .by_block
            .get(&BlockId(b))
            .expect("pending");
        (sno, idx)
    }

    #[test]
    fn insert_remove_roundtrip_keeps_indexes_clean() {
        let mut s = sched();
        s.insert(mig(0, 1, &[0, 1]), 1, JobHint::default(), SimTime::ZERO);
        s.insert(mig(1, 2, &[1, 2]), 2, JobHint::default(), SimTime::ZERO);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bytes(), 512 << 20);
        assert!(s.contains_block(BlockId(1)));
        let e = s.remove_block(BlockId(1)).expect("pending");
        assert_eq!(e.migration.id, MigrationId(0));
        assert_eq!(s.len(), 1);
        assert!(!s.contains_block(BlockId(1)));
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut s = sched();
        s.insert(mig(0, 1, &[0]), 1, JobHint::default(), SimTime::ZERO);
        s.insert(mig(1, 2, &[0]), 2, JobHint::default(), SimTime::ZERO);
        s.remove_block(BlockId(1));
        s.insert(mig(2, 3, &[0]), 3, JobHint::default(), SimTime::ZERO);
        // the freed slot 0 is reused, and the (single) shard's slab did
        // not grow
        assert_eq!(s.raw_shards[0].raw_pending.len(), 2);
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn job_ref_drop_removes_orphaned_entries() {
        let mut s = sched();
        s.insert(mig(0, 1, &[0]), 1, JobHint::default(), SimTime::ZERO);
        s.add_job_ref(
            BlockId(1),
            JobRef {
                job: JobId(2),
                eviction: EvictionMode::Implicit,
            },
        );
        assert_eq!(s.drop_job_ref(BlockId(1), JobId(1)), None);
        assert_eq!(s.drop_job_ref(BlockId(1), JobId(2)), Some(MigrationId(0)));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn pull_respects_limit_and_backoff() {
        let mut s = sched();
        for i in 0..5 {
            s.insert(mig(i, i, &[0, 1]), i + 1, JobHint::default(), SimTime::ZERO);
        }
        // entry 0 is still backing off
        let e = s.remove_block(BlockId(0)).expect("pending");
        s.insert(e.migration, 1, e.hint, SimTime::from_secs(100));
        let picked = s.pull(NodeId(0), false, SimTime::ZERO, 2);
        let blocks: Vec<u64> = picked.iter().map(|e| e.migration.block.0).collect();
        assert_eq!(blocks, vec![1, 2], "backoff skipped, limit enforced");
        assert_eq!(s.len(), 3, "unpicked entries stay queued");
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn sharded_store_spreads_ranges_and_merges_in_order() {
        let mut s = sched();
        s.set_config(SchedulerConfig {
            shards: 4,
            ..SchedulerConfig::default()
        });
        // Blocks 64 ids apart land in distinct shards; admission order
        // (seq) still rules the merged queue and the pull order.
        for i in 0..8u64 {
            let block = (7 - i) << SHARD_RANGE_BITS; // descending block ids
            s.insert(
                mig(i, block, &[0]),
                i + 1,
                JobHint::default(),
                SimTime::ZERO,
            );
        }
        assert!(
            s.raw_shards.iter().all(|sh| sh.len() == 2),
            "64-id ranges stripe evenly over 4 shards"
        );
        let seqs: Vec<u64> = s.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, (1..=8).collect::<Vec<u64>>(), "merged queue is FIFO");
        let blocks: Vec<u64> = s.block_ids().map(|b| b.0).collect();
        assert!(blocks.windows(2).all(|w| w[0] < w[1]), "block ids ascend");
        let picked = s.pull(NodeId(0), false, SimTime::ZERO, 3);
        let pulled: Vec<u64> = picked.iter().map(|e| e.seq).collect();
        assert_eq!(pulled, vec![1, 2, 3], "pull drains in admission order");
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn resharding_preserves_entries_targets_and_dirtiness() {
        let mut s = sched();
        for i in 0..6u64 {
            s.insert(
                mig(i, i << SHARD_RANGE_BITS, &[0, 1]),
                i + 1,
                JobHint::default(),
                SimTime::ZERO,
            );
        }
        s.retarget(&dyrs_obs::ObsHandle::default());
        let targets: Vec<Option<NodeId>> =
            (0..6u64).map(|i| s.target_of(BlockId(i << 6))).collect();
        // one more admission stays dirty across the re-shard
        s.insert(mig(9, 9 << 6, &[1]), 9, JobHint::default(), SimTime::ZERO);
        s.set_config(SchedulerConfig {
            shards: 8,
            ..SchedulerConfig::default()
        });
        assert_eq!(s.len(), 7);
        let after: Vec<Option<NodeId>> = (0..6u64).map(|i| s.target_of(BlockId(i << 6))).collect();
        assert_eq!(targets, after, "targets survive the re-shard");
        let dirty: usize = s.raw_shards.iter().map(|sh| sh.dirty_entries.len()).sum();
        assert_eq!(dirty, 1, "only the new admission is dirty");
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
        // and back down to one shard
        s.set_config(SchedulerConfig::default());
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.len(), 7);
        let mut report = AuditReport::new();
        s.audit(&mut report);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn tier_aware_scoring_carries_the_destination_tier() {
        let mut s = sched();
        // Node 0's policy offers only NVMe (tier 1, writes 2× slower than
        // the disk read); node 1 keeps the default memory-only set.
        s.set_node_tiers(0, vec![(1, 2.0)]);
        assert_eq!(s.node_tiers(0), &[(1, 2.0)]);
        assert_eq!(s.node_tiers(1), &[(0, 1.0)]);
        s.insert(mig(0, 1, &[0]), 1, JobHint::default(), SimTime::ZERO);
        s.insert(mig(1, 2, &[1]), 2, JobHint::default(), SimTime::ZERO);
        s.retarget(&dyrs_obs::ObsHandle::default());
        let (s0, i0) = slot_of(&s, 1);
        let (s1, i1) = slot_of(&s, 2);
        let e0 = s.raw_shards[s0].raw_pending[i0]
            .as_ref()
            .expect("live slot");
        assert_eq!(e0.target, Some(NodeId(0)));
        assert_eq!(e0.target_tier, 1, "chosen tier rides with the entry");
        let e1 = s.raw_shards[s1].raw_pending[i1]
            .as_ref()
            .expect("live slot");
        assert_eq!(e1.target_tier, 0);
        // same bytes, same spb: the tier-1 stream costs exactly 2×
        assert_eq!(e0.winner_score, 2.0 * e1.winner_score);
    }

    #[test]
    fn equal_tier_factors_tie_break_toward_memory() {
        let mut s = sched();
        s.set_node_tiers(0, vec![(0, 1.0), (1, 1.0), (2, 1.0)]);
        s.insert(mig(0, 1, &[0]), 1, JobHint::default(), SimTime::ZERO);
        s.retarget(&dyrs_obs::ObsHandle::default());
        let (sno, idx) = slot_of(&s, 1);
        let e = s.raw_shards[sno].raw_pending[idx]
            .as_ref()
            .expect("live slot");
        assert_eq!(e.target_tier, 0, "strict-min keeps the fastest tier");
    }

    #[test]
    fn node_tiers_survive_reset() {
        let mut s = sched();
        s.set_node_tiers(1, vec![(0, 1.0), (1, 3.0)]);
        s.reset(0.5);
        assert_eq!(
            s.node_tiers(1),
            &[(0, 1.0), (1, 3.0)],
            "tier shape is hardware, not soft state"
        );
    }

    #[test]
    fn order_keys_reproduce_the_disciplines() {
        let hint = |launch: u64, bytes: u64| JobHint {
            expected_launch: SimTime::from_secs(launch),
            total_bytes: bytes,
        };
        let fifo = |seq| OrderKey::new(MigrationOrder::Fifo, &hint(9, 9), seq);
        assert!(fifo(1) < fifo(2));
        let sjf = |b, seq| OrderKey::new(MigrationOrder::SmallestJobFirst, &hint(0, b), seq);
        assert!(sjf(1, 9) < sjf(2, 1));
        assert!(sjf(1, 1) < sjf(1, 2), "stable tie-break on arrival");
        let edf = |l, seq| OrderKey::new(MigrationOrder::EarliestDeadlineFirst, &hint(l, 0), seq);
        assert!(edf(10, 9) < edf(20, 1));
    }
}
