//! # dyrs — bandwidth-aware disk-to-memory migration of cold data
//!
//! This crate is the paper's contribution: the DYRS migration framework
//! (Dzinamarira, Dinu, Ng — IPPS 2019). It implements:
//!
//! * the **master** ([`master::Master`]): keeps the list of pending
//!   migrations, runs the greedy finish-time targeting pass (Algorithm 1),
//!   and binds migrations to slaves *lazily* when slaves pull for work —
//!   the delayed binding that lets DYRS adapt to residual bandwidth;
//! * the **slave** ([`slave::Slave`]): a short local FIFO queue (deep
//!   enough to ride out one heartbeat interval, no deeper), strictly
//!   serialized migrations (one disk read at a time, §III-B), the
//!   EWMA migration-time estimator with in-progress refresh (§IV-A), and
//!   buffer-memory management with per-block job reference lists and
//!   explicit/implicit eviction (§III-C3);
//! * the **policies** ([`policy`]): DYRS itself plus the paper's
//!   comparison points — Ignem (immediate random-replica binding),
//!   naive delayed binding without finish-time targeting (Fig. 10),
//!   no migration (plain HDFS), and instant-in-RAM (the upper bound).
//!
//! The master and slave are *reactive state machines*: every method takes
//! the current [`SimTime`](simkit::SimTime) and returns the actions the
//! caller must apply (streams to start, replicas to register, blocks to
//! evict). The `dyrs-sim` crate owns the event loop; everything here is
//! deterministic, synchronous, and directly unit-testable.
//!
//! Both state machines accept an [`ObsHandle`] (`attach_obs`) that records
//! migration lifecycle spans, registry metrics, and Algorithm 1 decision
//! provenance — see the re-exported [`obs`] crate and
//! `docs/OBSERVABILITY.md`. Without the `obs` cargo feature the handle is
//! a zero-sized no-op and the instrumentation compiles away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimator;
pub mod master;
pub mod policy;
pub mod refs;
pub mod sched;
pub mod slave;
pub mod types;

pub use config::{DyrsConfig, FailureDetectorConfig, SchedEngine, SchedulerConfig};
pub use dyrs_obs as obs;
pub use dyrs_obs::ObsHandle;
pub use dyrs_tiers as tiers;
pub use dyrs_tiers::{TierId, TierPolicy, TierPolicyKind, TierStackSpec};
pub use estimator::MigrationEstimator;
pub use master::JobHint;
pub use master::Master;
pub use master::{
    BlockRequest, BoundCheckpoint, HealthReport, MasterCheckpoint, Membership, NodeCheckpoint,
    NodeHealth, PendingCheckpoint, RequestOutcome, CHECKPOINT_VERSION,
};
pub use policy::{MigrationOrder, MigrationPolicy};
pub use refs::ReferenceLists;
pub use sched::RetargetStats;
pub use slave::{HeartbeatReport, Slave};
pub use types::{BoundMigration, EvictionMode, JobRef, Migration, MigrationId};
