//! The DYRS master (paper §III, §III-D).
//!
//! Lives inside the NameNode in the real system. Responsibilities:
//!
//! 1. accept migration/eviction requests for files (already mapped to
//!    blocks by the namespace),
//! 2. run the **Algorithm 1** targeting pass over the pending list in a
//!    background thread (here: a periodic [`Master::retarget`] call),
//! 3. answer slave pulls with migrations **bound at the last moment**
//!    (delayed binding, §III-A1),
//! 4. track where blocks are buffered so reads can be redirected and
//!    evictions routed.
//!
//! All state is soft (§III-C): [`Master::restart`] drops everything and
//! the system degrades to plain HDFS until slaves repopulate it.

use crate::config::{FailureDetectorConfig, SchedulerConfig};
use crate::policy::{MigrationOrder, MigrationPolicy};
use crate::sched::{RetargetStats, Scheduler};
use crate::types::{BoundMigration, EvictionMode, JobRef, Migration, MigrationId};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_obs::{cause, ObsHandle};
use serde::{Deserialize, Serialize};
use simkit::{Rng, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Scheduling hints about the requesting job, used by the non-FIFO
/// migration orders (future-work policies, see
/// [`MigrationOrder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobHint {
    /// When the job is expected to start reading (submission + platform
    /// overhead + any artificial lead-time).
    pub expected_launch: simkit::SimTime,
    /// The job's total input size in bytes.
    pub total_bytes: u64,
}

impl Default for JobHint {
    fn default() -> Self {
        JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: 0,
        }
    }
}

/// A client's request to migrate one block.
///
/// Wire payload (`dyrs-net`'s `Message::RequestMigration` carries a list
/// of these). `replicas` keeps submission order — a `Vec`, not a hash
/// set — so the encoded bytes are identical across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRequest {
    /// Block to migrate.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// Disk replica locations.
    pub replicas: Vec<NodeId>,
}

/// What a migration request produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Migrations bound immediately (Ignem only).
    pub immediate: Vec<BoundMigration>,
    /// Blocks already buffered somewhere: the hosting slave must add a job
    /// reference (no new migration needed).
    pub add_refs: Vec<(NodeId, BlockId, JobRef)>,
}

/// Per-slave knowledge at the master, fed by heartbeats (§III-D: "During
/// heartbeats, the master stores each slave's estimate of migration time
/// and the number of blocks currently queued on the slave").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct NodeState {
    /// Estimated migration cost, seconds per byte.
    spb: f64,
    /// Bytes queued (or actively migrating) on the slave.
    queued_bytes: f64,
    /// Liveness, mirrored from the file system's view.
    up: bool,
}

/// Counters for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Blocks ever requested for migration.
    pub requested_blocks: u64,
    /// Bytes ever requested.
    pub requested_bytes: u64,
    /// Migrations handed to slaves (bound).
    pub bound: u64,
    /// Migrations reported complete.
    pub completed: u64,
    /// Pending migrations cancelled because the block was read first.
    pub missed_reads: u64,
    /// Retargeting passes executed.
    pub retarget_passes: u64,
}

/// A node's health as classified by the gray-failure detector and the
/// membership plane. Only `Healthy`, `Probation` and `Joining` nodes are
/// Algorithm 1 candidates (a joining node under a bounded pull ramp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Heartbeating on time; full candidacy.
    Healthy,
    /// Missed its heartbeat deadline; its bound-but-unstarted migrations
    /// are unbound and it leaves candidacy until it heartbeats again.
    Suspect,
    /// Struck out (`quarantine_strikes` within `strike_window`); barred
    /// from candidacy until the quarantine backoff elapses.
    Quarantined,
    /// Quarantine backoff elapsed; allowed exactly one probation
    /// migration, whose completion restores `Healthy`.
    Probation,
    /// Freshly (re-)admitted to the cluster; a candidate, but pulls are
    /// capped by the admission ramp until `join_ramp_target` migrations
    /// complete, so a cold estimator never absorbs a full queue.
    Joining,
    /// Being intentionally emptied: no new binds, bound-but-unstarted
    /// work is re-targeted away, and the node is decommissioned once its
    /// bind queues drain.
    Draining,
}

impl NodeHealth {
    /// Stable lowercase name used in exports and test output.
    pub fn name(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Quarantined => "quarantined",
            NodeHealth::Probation => "probation",
            NodeHealth::Joining => "joining",
            NodeHealth::Draining => "draining",
        }
    }

    /// Numeric encoding for the `node.health` gauge (0 = healthy,
    /// 1 = suspect, 2 = probation, 3 = quarantined — ordered by how far
    /// the node is from full candidacy; the membership states append at
    /// 4 = joining, 5 = draining so the detector ordering stays stable).
    pub fn as_gauge(self) -> f64 {
        match self {
            NodeHealth::Healthy => 0.0,
            NodeHealth::Suspect => 1.0,
            NodeHealth::Probation => 2.0,
            NodeHealth::Quarantined => 3.0,
            NodeHealth::Joining => 4.0,
            NodeHealth::Draining => 5.0,
        }
    }
}

/// A node's coarse cluster-membership phase, derived from its health
/// state plus the `removed` flag: `Joining → Active → Draining → Removed`
/// (a removed node re-enters at `Joining` via [`Master::join_node`]).
/// `Active` covers every detector state — a suspect or quarantined node
/// is still a member, just not a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Membership {
    /// Admitted but still inside the warm-up ramp.
    Joining,
    /// A full member (any detector health).
    Active,
    /// Emptying its bind queues ahead of removal.
    Draining,
    /// Decommissioned: never a candidate, never bound work.
    Removed,
}

impl Membership {
    /// Stable lowercase name used in exports and admin replies.
    pub fn name(self) -> &'static str {
        match self {
            Membership::Joining => "joining",
            Membership::Active => "active",
            Membership::Draining => "draining",
            Membership::Removed => "removed",
        }
    }

    /// Numeric encoding for the `node.membership` gauge and the
    /// `DecommissionAck` wire payload (0 = joining, 1 = active,
    /// 2 = draining, 3 = removed — lifecycle order).
    pub fn as_gauge(self) -> f64 {
        f64::from(self.code())
    }

    /// The one-byte wire code (same ordering as [`Membership::as_gauge`]).
    pub fn code(self) -> u8 {
        match self {
            Membership::Joining => 0,
            Membership::Active => 1,
            Membership::Draining => 2,
            Membership::Removed => 3,
        }
    }

    /// Decode a wire code (inverse of [`Membership::code`]).
    pub fn from_code(code: u8) -> Option<Membership> {
        match code {
            0 => Some(Membership::Joining),
            1 => Some(Membership::Active),
            2 => Some(Membership::Draining),
            3 => Some(Membership::Removed),
            _ => None,
        }
    }
}

/// Per-node detector bookkeeping.
#[derive(Debug, Clone)]
struct DetectorState {
    /// Last heartbeat instant; `None` means the deadline is not armed
    /// (fresh start, node restart, or master restart) and arms at the
    /// next health check — so a resuming master never mass-suspects
    /// nodes it simply was not listening to.
    last_heartbeat: Option<SimTime>,
    health: NodeHealth,
    /// Strike instants inside the sliding window.
    strikes: VecDeque<SimTime>,
    quarantined_until: SimTime,
    /// The one in-flight probation migration, when on probation.
    probation_block: Option<BlockId>,
    /// Decommissioned: the slot exists (node ids are stable) but the node
    /// is never a candidate and never bound work until it re-joins.
    removed: bool,
    /// Migrations completed since the node started `Joining`; drives the
    /// admission ramp (`1 + join_completed` pulls allowed per heartbeat).
    join_completed: u32,
}

impl Default for DetectorState {
    fn default() -> Self {
        DetectorState {
            last_heartbeat: None,
            health: NodeHealth::Healthy,
            strikes: VecDeque::new(),
            quarantined_until: SimTime::ZERO,
            probation_block: None,
            removed: false,
            join_completed: 0,
        }
    }
}

/// A binding the master is tracking until the slave reports completion;
/// the raw material for stuck detection and for minting retry successors.
#[derive(Debug, Clone)]
struct BoundRecord {
    node: NodeId,
    bound_at: SimTime,
    /// The node's estimated stream time (`spb · bytes`) when the binding
    /// was made. The stuck deadline is measured against this snapshot, not
    /// the live estimate: a node that degrades after binding inflates its
    /// own estimate, and judging it by the inflated number would let a
    /// crawling queue keep its work forever.
    est_secs_at_bind: f64,
    hint: JobHint,
    /// The entry's original admission stamp, carried through the binding
    /// so a drain re-target can re-enqueue the successor at its original
    /// FIFO position (SJF/EDF keys travel in `hint`).
    seq: u64,
    migration: Migration,
}

/// What one [`Master::check_health`] pass found. The caller (the sim
/// driver, or an RPC layer in a real deployment) owns the slave channel,
/// so the master reports *candidates* and the caller confirms them against
/// the slave before calling [`Master::on_unbound`] / [`Master::discard_bound`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Nodes that just transitioned to `Suspect` (or failed probation):
    /// their bound-but-unstarted migrations should be revoked and
    /// unbound.
    pub newly_suspect: Vec<NodeId>,
    /// Bound migrations past their progress deadline, as (bound node,
    /// block) pairs.
    pub stuck: Vec<(NodeId, BlockId)>,
}

/// Checkpoint schema version. Bump on any layout change; a restarted
/// master refuses snapshots from a different version rather than guessing.
pub const CHECKPOINT_VERSION: u16 = 1;

/// A deterministic, versioned snapshot of the master's soft state — the
/// payload of the `Checkpoint` wire message and the unit `run_master`
/// writes on demand and reloads on restart. Built by
/// [`Master::checkpoint`], consumed by [`Master::restore_from`].
#[derive(Debug, Clone, PartialEq)]
pub struct MasterCheckpoint {
    /// Layout version ([`CHECKPOINT_VERSION`]).
    pub version: u16,
    /// Policy the checkpointing master ran (restore refuses a mismatch).
    pub policy: MigrationPolicy,
    /// Active pending-list discipline.
    pub order: MigrationOrder,
    /// Next migration-id counter (monotone across restarts so successor
    /// ids never collide with pre-checkpoint ones).
    pub next_id: u64,
    /// The detector clock at checkpoint time.
    pub clock: SimTime,
    /// Rolled-up counters.
    pub stats: MasterStats,
    /// Per-node view, indexed by node id.
    pub nodes: Vec<NodeCheckpoint>,
    /// Pending migrations in admission order (sorted by `seq`).
    pub pending: Vec<PendingCheckpoint>,
    /// block → node buffer map (memory-replica registry).
    pub migrated: Vec<(BlockId, NodeId)>,
    /// Ignem's submission-time bindings.
    pub ignem_bindings: Vec<(BlockId, NodeId)>,
    /// job → requested blocks (eviction routing).
    pub job_blocks: Vec<(JobId, Vec<BlockId>)>,
    /// Outstanding bindings awaiting completion.
    pub bound: Vec<BoundCheckpoint>,
}

/// One node's estimate, liveness, and detector/membership state inside a
/// [`MasterCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCheckpoint {
    /// Seconds-per-byte estimate at checkpoint time.
    pub spb: f64,
    /// The master's view of the node's queued backlog, in bytes.
    pub queued_bytes: f64,
    /// Liveness.
    pub up: bool,
    /// Detector/membership classification.
    pub health: NodeHealth,
    /// Strike instants inside the sliding window, oldest first.
    pub strikes: Vec<SimTime>,
    /// Quarantine expiry (meaningful while `health` is `Quarantined`).
    pub quarantined_until: SimTime,
    /// The in-flight probation migration, when on probation.
    pub probation_block: Option<BlockId>,
    /// Decommissioned flag.
    pub removed: bool,
    /// Admission-ramp progress, when joining.
    pub join_completed: u32,
}

/// One pending migration inside a [`MasterCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct PendingCheckpoint {
    /// The migration.
    pub migration: Migration,
    /// Original admission stamp (FIFO key and stable tie-break).
    pub seq: u64,
    /// Requesting job's scheduling hint.
    pub hint: JobHint,
    /// Retry backoff: may not bind before this instant.
    pub not_before: SimTime,
}

/// One outstanding binding inside a [`MasterCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheckpoint {
    /// The slave it is bound to.
    pub node: NodeId,
    /// When the binding was made.
    pub bound_at: SimTime,
    /// The node's estimated stream time when the binding was made.
    pub est_secs_at_bind: f64,
    /// Requesting job's scheduling hint.
    pub hint: JobHint,
    /// Original admission stamp.
    pub seq: u64,
    /// The bound migration.
    pub migration: Migration,
}

/// The DYRS master state machine.
///
/// ```
/// use dyrs::master::{BlockRequest, Master};
/// use dyrs::types::EvictionMode;
/// use dyrs::MigrationPolicy;
/// use dyrs_cluster::NodeId;
/// use dyrs_dfs::{BlockId, JobId};
/// use simkit::Rng;
///
/// const MB: f64 = (1u64 << 20) as f64;
/// let mut master = Master::new(MigrationPolicy::Dyrs, 3, 140.0 * MB, Rng::new(1));
///
/// // heartbeats teach the master each slave's migration cost
/// master.on_heartbeat(NodeId(0), 1.0 / (140.0 * MB), 0); // fast
/// master.on_heartbeat(NodeId(1), 1.0 / (10.0 * MB), 0);  // slow
/// master.on_heartbeat(NodeId(2), 1.0 / (140.0 * MB), 0); // fast
///
/// // a client asks to migrate one block replicated on nodes 0 and 1
/// master.request_migration(
///     JobId(7),
///     vec![BlockRequest {
///         block: BlockId(0),
///         bytes: 256 << 20,
///         replicas: vec![NodeId(0), NodeId(1)],
///     }],
///     EvictionMode::Implicit,
/// );
///
/// // Algorithm 1 targets the replica expected to finish earliest …
/// master.retarget();
/// assert_eq!(master.target_of(BlockId(0)), Some(NodeId(0)));
///
/// // … and binding happens lazily, when the *targeted* slave pulls:
/// assert!(master.on_slave_pull(NodeId(1), 4).is_empty(), "slow node gets nothing");
/// let bound = master.on_slave_pull(NodeId(0), 4);
/// assert_eq!(bound.len(), 1);
/// ```
pub struct Master {
    policy: MigrationPolicy,
    nodes: Vec<NodeState>,
    /// The indexed pending-migration store and Algorithm 1 engine. All
    /// pending bookkeeping goes through its API (`pending-fence` lint).
    sched: Scheduler,
    /// block → node currently buffering it.
    migrated: BTreeMap<BlockId, NodeId>,
    /// Ignem only: block → the replica chosen at submission time. Ignem's
    /// read path trusts this binding — reads are directed to the chosen
    /// node whether or not the migration has completed, which is why
    /// Fig. 8 shows Ignem's reads staying uniform even with a slow node.
    ignem_bindings: BTreeMap<BlockId, NodeId>,
    /// job → blocks it requested (eviction routing).
    job_blocks: BTreeMap<JobId, Vec<BlockId>>,
    rng: Rng,
    next_id: u64,
    stats: MasterStats,
    /// Prior for a node we have not heard a heartbeat from yet.
    default_spb: f64,
    /// Lifecycle span + provenance recorder; disconnected unless the
    /// driver attached one.
    obs: ObsHandle,
    /// Gray-failure detector config; `None` = detector off (the paper's
    /// exact behavior).
    detector: Option<FailureDetectorConfig>,
    /// Per-node detector state (only meaningful while `detector` is on).
    det: Vec<DetectorState>,
    /// Bindings awaiting completion, tracked for stuck detection and
    /// retry successors.
    bound_records: BTreeMap<BlockId, BoundRecord>,
    /// The detector's monotone view of simulated time, advanced by
    /// [`Master::on_heartbeat_at`] and [`Master::check_health`].
    clock: SimTime,
}

impl Master {
    /// A master for `num_nodes` slaves under the given policy.
    ///
    /// `default_disk_bw` seeds the per-node cost prior (used only until
    /// the first heartbeat from each slave); `rng` drives Ignem's random
    /// replica choice.
    pub fn new(policy: MigrationPolicy, num_nodes: usize, default_disk_bw: f64, rng: Rng) -> Self {
        assert!(default_disk_bw > 0.0, "invalid disk bandwidth");
        Master {
            policy,
            nodes: vec![
                NodeState {
                    spb: 1.0 / default_disk_bw,
                    queued_bytes: 0.0,
                    up: true,
                };
                num_nodes
            ],
            sched: Scheduler::new(num_nodes, 1.0 / default_disk_bw),
            migrated: BTreeMap::new(),
            ignem_bindings: BTreeMap::new(),
            job_blocks: BTreeMap::new(),
            rng,
            next_id: 0,
            stats: MasterStats::default(),
            default_spb: 1.0 / default_disk_bw,
            obs: ObsHandle::default(),
            detector: None,
            det: vec![DetectorState::default(); num_nodes],
            bound_records: BTreeMap::new(),
            clock: SimTime::ZERO,
        }
    }

    /// Enable the gray-failure detector. Only meaningful under delayed
    /// binding (Dyrs / Naive): the other policies never hold master-side
    /// bindings to unbind.
    pub fn configure_detector(&mut self, cfg: FailureDetectorConfig) {
        if cfg.enabled && self.policy.delayed_binding() {
            self.detector = Some(cfg);
        } else {
            self.detector = None;
            // Stale detector verdicts make no sense with the detector off;
            // membership state (joining/draining/removed) survives.
            for d in &mut self.det {
                if matches!(
                    d.health,
                    NodeHealth::Suspect | NodeHealth::Quarantined | NodeHealth::Probation
                ) {
                    d.health = NodeHealth::Healthy;
                    d.probation_block = None;
                }
            }
        }
        // Toggling the detector changes every node's candidacy rule.
        self.sync_all_nodes();
    }

    /// Select the scheduler engine and dirty-set thresholds (default:
    /// the incremental engine with an exact snapshot mirror).
    pub fn set_sched_config(&mut self, cfg: SchedulerConfig) {
        self.sched.set_config(cfg);
    }

    /// Declare `node`'s candidate destination tiers for tier-aware
    /// Algorithm 1: ascending `(tier, write_factor)` pairs, where the
    /// factor scales the candidate's own stream cost by the destination
    /// tier's write bandwidth (1.0 = memory-speed). Hardware shape, not
    /// soft state — it survives master checkpoint-restart like the node
    /// table itself. The default everywhere is `[(0, 1.0)]`, which keeps
    /// legacy 2-tier scoring bit-identical.
    pub fn set_node_tiers(&mut self, node: NodeId, tiers: Vec<(u8, f64)>) {
        self.sched.set_node_tiers(node.index(), tiers);
    }

    /// The node's eligible destination tiers as Algorithm 1 sees them.
    pub fn node_tiers(&self, node: NodeId) -> &[(u8, f64)] {
        self.sched.node_tiers(node.index())
    }

    /// Push the master's live view of `node` — cost estimate, queued
    /// backlog, and candidacy (liveness ∧ detector health) — into the
    /// scheduler's scoring snapshot. Every mutation site calls this, so
    /// the snapshot trails the live view by at most the configured
    /// `spb_epsilon` (exact mirror at the default 0).
    fn sync_node(&mut self, node: NodeId) {
        let i = node.index();
        let s = self.nodes[i];
        self.sched.set_node_load(i, s.spb, s.queued_bytes);
        let candidate = s.up && self.targetable(node);
        self.sched.set_node_candidacy(i, candidate);
    }

    fn sync_all_nodes(&mut self) {
        for i in 0..self.nodes.len() {
            self.sync_node(NodeId(i as u32));
        }
    }

    /// Whether the gray-failure detector is active.
    pub fn detector_enabled(&self) -> bool {
        self.detector.is_some()
    }

    /// The node's current health classification. With the detector off,
    /// only the membership states (`Joining` / `Draining`) are reachable
    /// besides `Healthy`, so this stays `Healthy` for the paper's exact
    /// protocol until a membership operation runs.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.det[node.index()].health
    }

    /// The node's cluster-membership phase
    /// (`Joining → Active → Draining → Removed`).
    pub fn membership(&self, node: NodeId) -> Membership {
        let d = &self.det[node.index()];
        if d.removed {
            Membership::Removed
        } else {
            match d.health {
                NodeHealth::Joining => Membership::Joining,
                NodeHealth::Draining => Membership::Draining,
                _ => Membership::Active,
            }
        }
    }

    /// Attach an observability recorder. Migration lifecycle transitions
    /// owned by the master (pending / targeted / bound / master-side
    /// aborts) and Algorithm 1 provenance are recorded through it.
    pub fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Select the pending-list discipline (default FIFO).
    pub fn set_order(&mut self, order: MigrationOrder) {
        self.sched.set_order(order);
    }

    /// The active pending-list discipline.
    pub fn order(&self) -> MigrationOrder {
        self.sched.order()
    }

    /// The active policy.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }

    /// Statistics so far.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Number of migrations waiting to be bound.
    pub fn pending_len(&self) -> usize {
        self.sched.len()
    }

    /// Total bytes waiting to be bound.
    pub fn pending_bytes(&self) -> u64 {
        self.sched.bytes()
    }

    /// The node a pending block is currently targeted at, if any.
    pub fn target_of(&self, block: BlockId) -> Option<NodeId> {
        self.sched.target_of(block)
    }

    /// Where a block is buffered, if anywhere.
    pub fn memory_location(&self, block: BlockId) -> Option<NodeId> {
        self.migrated.get(&block).copied()
    }

    /// Blocks awaiting binding, in ascending id order (exposed for
    /// auditing).
    pub fn pending_block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.sched.block_ids()
    }

    /// Number of range shards the pending store is partitioned into.
    pub fn sched_shard_count(&self) -> usize {
        self.sched.shard_count()
    }

    /// Per-shard pending depth, in shard order (feeds the per-shard
    /// `sched.pending_depth` gauge).
    pub fn sched_shard_depths(&self) -> Vec<usize> {
        self.sched.shard_depths()
    }

    /// Per-shard rescored counts from the most recent retarget pass, in
    /// shard order (feeds the per-shard `sched.dirty_entries` gauge).
    pub fn sched_shard_rescored(&self) -> &[u64] {
        self.sched.shard_rescored()
    }

    /// Every (block, hosting node) buffering record, in ascending block
    /// order (exposed for auditing).
    pub fn buffered_locations(&self) -> impl Iterator<Item = (BlockId, NodeId)> + '_ {
        self.migrated.iter().map(|(&b, &n)| (b, n))
    }

    /// The master's heartbeat-fed view of `node`'s queued backlog in
    /// bytes (exposed for auditing). Between heartbeats this can only
    /// overestimate the slave's true backlog: binds add to both sides
    /// synchronously, while completions and cancellations shrink the
    /// slave's side first.
    pub fn queued_bytes_view(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].queued_bytes
    }

    /// Ignem's submission-time binding for `block`, if the bound node is
    /// still up. Ignem's read path serves the block from this node (its
    /// disk until migration completes, its memory afterwards).
    pub fn ignem_read_target(&self, block: BlockId) -> Option<NodeId> {
        self.ignem_bindings
            .get(&block)
            .copied()
            .filter(|n| self.nodes[n.index()].up)
    }

    // ------------------------------------------------------------------
    // client requests
    // ------------------------------------------------------------------

    /// Handle a client migration request: `job` wants `blocks` in memory.
    ///
    /// * policy `Disabled` / `InstantRam`: no-op here (the simulator wires
    ///   InstantRam by pre-buffering outside the master);
    /// * `Ignem`: every block is bound immediately to a uniformly random
    ///   replica (§VI);
    /// * `Naive` / `Dyrs`: blocks join the pending list for delayed binding.
    ///
    /// Blocks already pending gain an extra job reference; blocks already
    /// buffered produce `add_refs` entries for the hosting slave.
    pub fn request_migration(
        &mut self,
        job: JobId,
        blocks: Vec<BlockRequest>,
        eviction: EvictionMode,
    ) -> RequestOutcome {
        self.request_migration_hinted(job, blocks, eviction, JobHint::default())
    }

    /// Like [`Master::request_migration`], with scheduling hints for the
    /// non-FIFO migration orders.
    pub fn request_migration_hinted(
        &mut self,
        job: JobId,
        blocks: Vec<BlockRequest>,
        eviction: EvictionMode,
        hint: JobHint,
    ) -> RequestOutcome {
        let mut out = RequestOutcome::default();
        if !self.policy.migrates() || self.policy == MigrationPolicy::InstantRam {
            return out;
        }
        let jref = JobRef { job, eviction };
        for req in blocks {
            if req.bytes == 0 || req.replicas.is_empty() {
                continue; // nothing to move / nowhere to read from
            }
            self.job_blocks.entry(job).or_default().push(req.block);
            if let Some(&node) = self.migrated.get(&req.block) {
                out.add_refs.push((node, req.block, jref));
                continue;
            }
            if self.sched.contains_block(req.block) {
                self.sched.add_job_ref(req.block, jref);
                continue;
            }
            self.stats.requested_blocks += 1;
            self.stats.requested_bytes += req.bytes;
            let migration = Migration {
                id: MigrationId(self.next_id),
                block: req.block,
                bytes: req.bytes,
                jobs: vec![jref],
                replicas: req.replicas,
                attempt: 0,
                dest_tier: 0,
            };
            self.next_id += 1;
            self.obs
                .migration_pending(migration.id.0, req.block, req.bytes, Some(job));
            if self.policy == MigrationPolicy::Ignem {
                // Immediate random-replica binding; the block never enters
                // the pending list.
                let up: Vec<NodeId> = migration
                    .replicas
                    .iter()
                    .copied()
                    .filter(|n| self.nodes[n.index()].up)
                    .collect();
                if let Some(&node) = up.get(self.rng.below(up.len().max(1) as u64) as usize) {
                    self.nodes[node.index()].queued_bytes += migration.bytes as f64;
                    self.stats.bound += 1;
                    self.ignem_bindings.insert(migration.block, node);
                    self.obs
                        .migration_bound(migration.id.0, node, 0, cause::IGNEM_IMMEDIATE);
                    out.immediate.push(BoundMigration { migration, node });
                    self.sync_node(node);
                } else {
                    self.obs
                        .migration_aborted(migration.id.0, None, cause::NO_LIVE_REPLICA);
                }
            } else {
                let seq = self.next_id; // ids are monotone → arrival order
                self.sched.insert(migration, seq, hint, SimTime::ZERO);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // heartbeats & liveness
    // ------------------------------------------------------------------

    /// Record a slave heartbeat: its migration-cost estimate (seconds per
    /// byte) and its queued backlog in bytes. Timeless variant for callers
    /// without a clock (keeps the heartbeat at the detector's current
    /// time, so deadlines never regress).
    pub fn on_heartbeat(&mut self, node: NodeId, secs_per_byte: f64, queued_bytes: u64) {
        let now = self.clock;
        self.on_heartbeat_at(node, secs_per_byte, queued_bytes, now);
    }

    /// Record a slave heartbeat at simulated time `now`: feeds the cost /
    /// backlog view and re-arms the node's failure-detector deadline. A
    /// heartbeat from a `Suspect` node clears the suspicion (its strike
    /// stays on the record).
    pub fn on_heartbeat_at(
        &mut self,
        node: NodeId,
        secs_per_byte: f64,
        queued_bytes: u64,
        now: SimTime,
    ) {
        self.clock = self.clock.max(now);
        let s = &mut self.nodes[node.index()];
        s.spb = secs_per_byte;
        s.queued_bytes = queued_bytes as f64;
        s.up = true;
        if self.detector.is_some() {
            let d = &mut self.det[node.index()];
            d.last_heartbeat = Some(self.clock);
            if d.health == NodeHealth::Suspect {
                d.health = NodeHealth::Healthy;
            }
        }
        self.sync_node(node);
    }

    /// Record a batch of slave heartbeats at simulated time `now` in one
    /// call. Semantically identical to [`Master::on_heartbeat_at`] per
    /// report (same snapshot updates, same detector re-arms, in slice
    /// order); the point is the call shape — the driver's batched mode
    /// and the daemon's epoll loop hand the master a whole arrival window
    /// at once, paying the wire/dispatch overhead once instead of per
    /// node, and running the failure-detector sweep once afterwards
    /// rather than per arrival.
    pub fn on_heartbeat_batch(&mut self, reports: &[(NodeId, f64, u64)], now: SimTime) {
        for &(node, spb, queued) in reports {
            self.on_heartbeat_at(node, spb, queued, now);
        }
    }

    /// Mark a slave up or down (mirrors the file system's liveness view).
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.nodes[node.index()].up = up;
        if !up {
            // Blocks buffered there are gone; pending targets get fixed by
            // the next retarget pass.
            self.migrated.retain(|_, &mut n| n != node);
            // Fail-stop: the slave aborts its own queue when it dies; the
            // master re-pends successors so surviving replicas can cover
            // the work (no strike — this is a detected crash, not a gray
            // failure). With the detector off the records are simply
            // forgotten, matching the paper's soft-state story.
            let lost: Vec<BlockId> = self
                .bound_records
                .iter()
                .filter(|(_, r)| r.node == node)
                .map(|(&b, _)| b)
                .collect();
            for block in lost {
                if self.detector.is_some() {
                    self.respawn_bound(block, false);
                } else {
                    self.bound_records.remove(&block);
                }
            }
            // Detector verdicts reset with the crash; membership survives
            // it (a draining node that flaps is still draining).
            let d = &mut self.det[node.index()];
            let membership_health =
                matches!(d.health, NodeHealth::Joining | NodeHealth::Draining).then_some(d.health);
            let (removed, join_completed) = (d.removed, d.join_completed);
            *d = DetectorState::default();
            if let Some(h) = membership_health {
                d.health = h;
            }
            d.removed = removed;
            d.join_completed = join_completed;
        } else if self.detector.is_some() {
            // Re-arm the deadline at the next health check rather than
            // inheriting the pre-crash one.
            self.det[node.index()].last_heartbeat = None;
        }
        self.sync_node(node);
    }

    /// One failure-detector pass at simulated time `now`: classify nodes
    /// whose heartbeat deadline lapsed as `Suspect`, lift expired
    /// quarantines into `Probation`, and flag bound migrations past their
    /// progress deadline. The caller confirms the report against the
    /// slaves (which it owns) and feeds confirmed unbinds back through
    /// [`Master::on_unbound`] / [`Master::discard_bound`].
    pub fn check_health(&mut self, now: SimTime) -> HealthReport {
        let mut report = HealthReport::default();
        let Some(cfg) = self.detector.clone() else {
            return report;
        };
        self.clock = self.clock.max(now);
        let now = self.clock;
        for i in 0..self.nodes.len() {
            // Removed nodes are out of the cluster: no heartbeat deadline,
            // no verdicts, even if a stale peer keeps the socket open.
            if !self.nodes[i].up || self.det[i].removed {
                continue;
            }
            let node = NodeId(i as u32);
            let d = &mut self.det[i];
            if d.health == NodeHealth::Quarantined && now >= d.quarantined_until {
                d.health = NodeHealth::Probation;
                d.probation_block = None;
                self.obs.counter_add("detector.probations", 1);
            }
            match d.last_heartbeat {
                None => d.last_heartbeat = Some(now), // arm the deadline
                Some(hb) => {
                    let lapsed = now.saturating_since(hb) > cfg.suspect_after;
                    if lapsed && matches!(d.health, NodeHealth::Healthy | NodeHealth::Probation) {
                        let failed_probation = d.health == NodeHealth::Probation;
                        d.health = NodeHealth::Suspect;
                        report.newly_suspect.push(node);
                        self.obs.counter_add("detector.suspects", 1);
                        self.strike(node, &cfg, now);
                        if failed_probation {
                            // A node that goes dark on probation has not
                            // earned its way back.
                            self.quarantine(node, &cfg, now);
                        }
                    }
                }
            }
        }
        for (&block, rec) in &self.bound_records {
            let i = rec.node.index();
            if !self.nodes[i].up {
                continue;
            }
            let deadline =
                simkit::SimDuration::from_secs_f64(rec.est_secs_at_bind * cfg.stuck_multiple)
                    .max(cfg.stuck_floor);
            if now.saturating_since(rec.bound_at) > deadline {
                report.stuck.push((rec.node, block));
            }
        }
        // Health transitions above change candidacy; push the new view.
        self.sync_all_nodes();
        report
    }

    /// Count one strike against `node` inside the sliding window;
    /// quarantine it when it strikes out.
    fn strike(&mut self, node: NodeId, cfg: &FailureDetectorConfig, now: SimTime) {
        self.obs.counter_add("detector.strikes", 1);
        let d = &mut self.det[node.index()];
        d.strikes.push_back(now);
        while let Some(&t) = d.strikes.front() {
            if now.saturating_since(t) > cfg.strike_window {
                d.strikes.pop_front();
            } else {
                break;
            }
        }
        if d.strikes.len() as u32 >= cfg.quarantine_strikes {
            self.quarantine(node, cfg, now);
        }
    }

    fn quarantine(&mut self, node: NodeId, cfg: &FailureDetectorConfig, now: SimTime) {
        let d = &mut self.det[node.index()];
        d.health = NodeHealth::Quarantined;
        d.quarantined_until = now + cfg.quarantine_backoff;
        d.probation_block = None;
        d.strikes.clear();
        self.obs.counter_add("detector.quarantines", 1);
        // Crash flight recorder: a quarantine is exactly the moment an
        // operator wants the recent span history, dumped and named.
        self.obs.flight_auto_dump("node-quarantined", Some(node));
    }

    /// A confirmed unbind: the caller revoked `block` from `node`'s queue
    /// (suspect node or stuck stream). Strikes the node, aborts the old
    /// span, and — while the bounded-retry budget lasts — re-pends a
    /// successor migration under a fresh id with deterministic exponential
    /// backoff, so Algorithm 1 can re-target a surviving replica.
    pub fn on_unbound(&mut self, node: NodeId, block: BlockId, why: &'static str) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        match self.bound_records.get(&block) {
            Some(rec) if rec.node == node => {}
            _ => return, // stale: completed or re-bound meanwhile
        }
        let rec = self.bound_records.remove(&block).expect("presence checked");
        let s = &mut self.nodes[node.index()];
        s.queued_bytes = (s.queued_bytes - rec.migration.bytes as f64).max(0.0);
        self.strike(node, &cfg, self.clock);
        self.sync_node(node);
        let old = rec.migration;
        let attempt = old.attempt + 1;
        if attempt >= cfg.max_attempts {
            // Bounded retry: give up on the chain; the jobs read from disk.
            self.obs
                .migration_aborted(old.id.0, Some(node), cause::RETRIES_EXHAUSTED);
            self.obs.counter_add("detector.retries_exhausted", 1);
            return;
        }
        self.obs.migration_aborted(old.id.0, Some(node), why);
        if self.sched.contains_block(block) {
            // A newer request already re-pended the block; no successor.
            return;
        }
        self.spawn_successor(old, attempt, rec.hint, true);
    }

    /// Forget a binding without a strike or a successor: the caller found
    /// the slave no longer holds it (completed, cancelled by a read,
    /// scavenged, ...) so the slave owned the span's terminal event.
    ///
    /// Deliberately leaves `queued_bytes` alone: the slave dropped the
    /// block before this call, so the node's next heartbeat report (often
    /// already the last one) excludes its bytes — decrementing here on top
    /// of that sync would push the master's view *below* the slave's true
    /// backlog, breaking the §III-D overestimate invariant. A stale
    /// overestimate until the next heartbeat is the safe direction.
    pub fn discard_bound(&mut self, block: BlockId) {
        self.bound_records.remove(&block);
    }

    /// Re-pend a bound migration whose node fail-stopped. The dying slave
    /// owns the old span's terminal event (`slave-restart`), so this mints
    /// the successor silently on the old id and loudly on the new one.
    fn respawn_bound(&mut self, block: BlockId, strike: bool) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        let Some(rec) = self.bound_records.remove(&block) else {
            return;
        };
        let s = &mut self.nodes[rec.node.index()];
        s.queued_bytes = (s.queued_bytes - rec.migration.bytes as f64).max(0.0);
        if strike {
            self.strike(rec.node, &cfg, self.clock);
        }
        self.sync_node(rec.node);
        let attempt = rec.migration.attempt + 1;
        if attempt >= cfg.max_attempts || self.sched.contains_block(block) {
            return;
        }
        self.spawn_successor(rec.migration, attempt, rec.hint, true);
    }

    /// The configured join admission ramp, falling back to the default
    /// when the detector is off (membership works either way).
    fn join_ramp_target(&self) -> u32 {
        self.detector.as_ref().map_or_else(
            || FailureDetectorConfig::default().join_ramp_target,
            |c| c.join_ramp_target,
        )
    }

    /// Deterministic seeded jitter in `[0, backoff/2)`: successors minted
    /// together (a drained node's whole queue, a crashed node's bindings)
    /// spread out instead of re-binding in lockstep.
    fn retry_jitter(&mut self, backoff: simkit::SimDuration) -> simkit::SimDuration {
        backoff.mul_f64(self.rng.below(512) as f64 / 1024.0)
    }

    /// Mint and enqueue the retry successor for an unbound migration.
    fn spawn_successor(&mut self, old: Migration, attempt: u32, hint: JobHint, backoff: bool) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        let id = MigrationId(self.next_id);
        self.next_id += 1;
        let not_before = if backoff {
            // retry_backoff · 2^(attempt−1) + jitter, exponent capped well
            // below overflow; attempt ≥ 1 here.
            self.clock
                + cfg
                    .retry_backoff
                    .mul_f64(f64::powi(2.0, (attempt - 1).min(16) as i32))
                + self.retry_jitter(cfg.retry_backoff)
        } else {
            self.clock
        };
        let migration = Migration {
            id,
            block: old.block,
            bytes: old.bytes,
            jobs: old.jobs,
            replicas: old.replicas,
            attempt,
            dest_tier: 0,
        };
        self.obs
            .migration_pending_why(id.0, old.block, old.bytes, None, cause::RETRY);
        self.obs.counter_add("detector.retries", 1);
        let seq = self.next_id;
        self.sched.insert(migration, seq, hint, not_before);
    }

    // ------------------------------------------------------------------
    // Algorithm 1 — finish-time targeting
    // ------------------------------------------------------------------

    /// Whether the detector and membership plane admit `node` as an
    /// Algorithm 1 candidate. A joining node is a candidate (its pulls
    /// are ramp-capped instead); draining and removed nodes are not.
    fn targetable(&self, node: NodeId) -> bool {
        let d = &self.det[node.index()];
        !d.removed
            && matches!(
                d.health,
                NodeHealth::Healthy | NodeHealth::Probation | NodeHealth::Joining
            )
    }

    /// One pass of Algorithm 1: greedily set each pending block's target
    /// to the replica node where it is expected to finish earliest, given
    /// each node's estimated cost and already-queued backlog.
    ///
    /// Generalized from blocks to bytes: the paper's
    /// `finishTime[n] = migTime[n] × (numQueued[n]+1)` becomes
    /// `finish[n] = spb[n] × queued_bytes[n]` plus the candidate block's
    /// own `spb[n] × bytes` evaluated per candidate, which reduces to the
    /// paper's formula when all blocks are the same size.
    ///
    /// The heavy lifting lives in [`crate::sched`]: the default
    /// incremental engine rescoring only entries whose candidate set
    /// changed since the last pass, with the full-rescan reference engine
    /// selectable via [`crate::config::SchedulerConfig`]. Both produce
    /// bit-identical decisions; `bench/algo1_*` validates the §III-D
    /// scalability claim (50 GB of pending migrations retargeted in under
    /// a millisecond) for both.
    ///
    /// Returns how many pending entries the pass rescored vs skipped.
    pub fn retarget(&mut self) -> RetargetStats {
        if !self.policy.uses_targeting() {
            return RetargetStats::default();
        }
        self.stats.retarget_passes += 1;
        self.sched.retarget(&self.obs)
    }

    // ------------------------------------------------------------------
    // slave pull — delayed binding
    // ------------------------------------------------------------------

    /// A slave with `space` free local-queue slots asks for work.
    ///
    /// * `Dyrs`: only blocks *targeted* at this slave may bind — a slow
    ///   node gets nothing once faster nodes can cover the tail (§V-F3);
    /// * `Naive`: any pending block with a replica on this slave binds
    ///   (FIFO) — the straggler-prone baseline of Fig. 10;
    /// * other policies: nothing (no delayed binding).
    pub fn on_slave_pull(&mut self, node: NodeId, space: usize) -> Vec<Migration> {
        if !self.policy.delayed_binding() || space == 0 || !self.nodes[node.index()].up {
            return Vec::new();
        }
        // Detector and membership gating: suspect, quarantined, draining
        // and removed nodes get no work; a probation node gets exactly one
        // migration in flight; a joining node is capped by the admission
        // ramp (`1 + completions` since it joined).
        let mut allow = usize::MAX;
        {
            let d = &self.det[node.index()];
            if d.removed {
                return Vec::new();
            }
            match d.health {
                NodeHealth::Suspect | NodeHealth::Quarantined | NodeHealth::Draining => {
                    return Vec::new()
                }
                NodeHealth::Probation => {
                    if d.probation_block.is_some() {
                        return Vec::new();
                    }
                    allow = 1;
                }
                NodeHealth::Joining => {
                    allow = 1 + d.join_completed as usize;
                }
                NodeHealth::Healthy => {}
            }
        }
        let targeted = self.policy.uses_targeting();
        let now = self.clock;
        // The per-node index pops exactly the eligible entries in
        // admission order — no scan over unrelated pending work, and no
        // popping past the `space.min(allow)` budget.
        let picked = self.sched.pull(node, targeted, now, space.min(allow));
        let mut taken = Vec::with_capacity(picked.len());
        for mut entry in picked {
            // Stamp the destination tier Algorithm 1 chose alongside the
            // node, so the slave admits the stream against the right tier
            // (always 0 = memory on the legacy 2-tier stack).
            entry.migration.dest_tier = entry.target_tier;
            self.nodes[node.index()].queued_bytes += entry.migration.bytes as f64;
            self.stats.bound += 1;
            self.obs.migration_bound(
                entry.migration.id.0,
                node,
                entry.target_tier,
                cause::HEARTBEAT_PULL,
            );
            if self.det[node.index()].health == NodeHealth::Probation {
                self.det[node.index()].probation_block = Some(entry.migration.block);
            }
            // Tracked regardless of the detector: drain needs to know what
            // is bound where even under the paper's exact protocol.
            self.bound_records.insert(
                entry.migration.block,
                BoundRecord {
                    node,
                    bound_at: now,
                    est_secs_at_bind: self.nodes[node.index()].spb * entry.migration.bytes as f64,
                    hint: entry.hint,
                    seq: entry.seq,
                    migration: entry.migration.clone(),
                },
            );
            taken.push(entry.migration);
        }
        self.sync_node(node);
        taken
    }

    // ------------------------------------------------------------------
    // completion / reads / eviction
    // ------------------------------------------------------------------

    /// Migration id and bind time currently recorded for `block` on
    /// `node`, if any. A wire daemon uses this to close its own span when
    /// the completion frame arrives; in the simulator the slave model
    /// shares the obs handle and owns the terminal event, so the master
    /// never emits one itself.
    pub fn bound_migration(&self, node: NodeId, block: BlockId) -> Option<(u64, SimTime)> {
        self.bound_records
            .get(&block)
            .filter(|r| r.node == node)
            .map(|r| (r.migration.id.0, r.bound_at))
    }

    /// A slave finished migrating `block` into its memory.
    pub fn on_migration_complete(&mut self, node: NodeId, block: BlockId) {
        self.migrated.insert(block, node);
        self.stats.completed += 1;
        if matches!(self.bound_records.get(&block), Some(rec) if rec.node == node) {
            self.bound_records.remove(&block);
        }
        let ramp = self.join_ramp_target();
        let d = &mut self.det[node.index()];
        if d.health == NodeHealth::Probation && d.probation_block == Some(block) {
            // The probation migration finished: the circuit closes.
            d.health = NodeHealth::Healthy;
            d.probation_block = None;
            d.strikes.clear();
            self.obs.counter_add("detector.probations_passed", 1);
        } else if d.health == NodeHealth::Joining {
            // Admission ramp: each completion widens the pull cap; after
            // `join_ramp_target` completions the node is a full member.
            d.join_completed += 1;
            if d.join_completed >= ramp {
                d.health = NodeHealth::Healthy;
                d.join_completed = 0;
                self.obs.counter_add("membership.joins_completed", 1);
            }
        }
        self.sync_node(node);
    }

    /// A slave evicted `block` from its memory.
    pub fn on_evicted(&mut self, block: BlockId) {
        self.migrated.remove(&block);
    }

    /// A block was read before its migration was bound: cancel the pending
    /// migration (a *missed read* — migrating it now would be wasted work).
    /// Returns `true` if a pending migration was cancelled.
    pub fn on_block_read(&mut self, block: BlockId) -> bool {
        // One O(log n) index lookup replaces the old double scan (find for
        // the obs event, then retain to drop the entry).
        match self.sched.remove_block(block) {
            Some(entry) => {
                self.obs
                    .migration_aborted(entry.migration.id.0, None, cause::MISSED_READ);
                self.stats.missed_reads += 1;
                true
            }
            None => false,
        }
    }

    /// Explicit evict command for `job` (routed through the master,
    /// §III-C3). Removes the job from pending migrations (dropping entries
    /// nobody else wants) and returns the set of nodes that must drop the
    /// job's references.
    pub fn evict_job(&mut self, job: JobId) -> Vec<NodeId> {
        // Drop the job from pending migrations. `job_blocks` records every
        // block the job ever requested (every pending job-ref was added
        // alongside a `job_blocks` push), so this visits only the job's
        // own blocks instead of scanning the whole pending list.
        let blocks = self.job_blocks.remove(&job).unwrap_or_default();
        for &block in &blocks {
            if let Some(id) = self.sched.drop_job_ref(block, job) {
                self.obs.migration_aborted(id.0, None, cause::JOB_EVICTED);
            }
        }
        // Tell every slave buffering one of the job's blocks.
        let mut nodes: Vec<NodeId> = blocks
            .iter()
            .filter_map(|b| self.migrated.get(b).copied())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Master (process) failure + restart: all soft state is lost
    /// (§III-C1). Slaves keep their buffers and clean them up themselves;
    /// the only cost is that reads cannot be redirected to memory until
    /// state is repopulated.
    pub fn restart(&mut self) {
        for entry in self.sched.entries() {
            self.obs
                .migration_aborted(entry.migration.id.0, None, cause::MASTER_RESTART);
        }
        self.sched.reset(self.default_spb);
        self.migrated.clear();
        self.ignem_bindings.clear();
        self.job_blocks.clear();
        self.bound_records.clear();
        for s in &mut self.nodes {
            s.spb = self.default_spb;
            s.queued_bytes = 0.0;
        }
        // Detector state is soft too: everyone restarts healthy with an
        // unarmed deadline (no mass-suspect storm after the outage).
        for d in &mut self.det {
            *d = DetectorState::default();
        }
        // Nodes that were down stay down across a *master* restart; push
        // the post-reset load and candidacy view into the scheduler.
        self.sync_all_nodes();
    }

    // ------------------------------------------------------------------
    // membership lifecycle — drain / decommission / join
    // ------------------------------------------------------------------

    /// Begin draining `node`: it stops receiving new binds immediately
    /// (its pulls return empty) and leaves Algorithm 1 candidacy, but its
    /// active streams run to completion. Returns the blocks currently
    /// bound to it — the caller revokes the *not-yet-started* ones from
    /// the slave's queue and feeds each confirmed revocation back through
    /// [`Master::on_drain_unbound`]. Idempotent: re-draining a draining
    /// node just returns its remaining bound blocks.
    pub fn drain_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let d = &mut self.det[node.index()];
        if d.removed {
            return Vec::new();
        }
        if d.health != NodeHealth::Draining {
            d.health = NodeHealth::Draining;
            d.probation_block = None;
            d.join_completed = 0;
            self.obs.counter_add("membership.drains", 1);
        }
        self.sync_node(node);
        self.bound_records
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&b, _)| b)
            .collect()
    }

    /// A confirmed drain revocation: the caller removed `block` from the
    /// draining `node`'s local queue before the stream started. Unlike
    /// [`Master::on_unbound`] this is intentional — no strike, no attempt
    /// increment — and the successor re-enters the pending list at the
    /// predecessor's original admission position, so FIFO/SJF/EDF order
    /// is preserved for re-targeted work.
    pub fn on_drain_unbound(&mut self, node: NodeId, block: BlockId) {
        match self.bound_records.get(&block) {
            Some(rec) if rec.node == node => {}
            _ => return, // stale: completed or re-bound meanwhile
        }
        let rec = self.bound_records.remove(&block).expect("presence checked");
        let s = &mut self.nodes[node.index()];
        s.queued_bytes = (s.queued_bytes - rec.migration.bytes as f64).max(0.0);
        self.sync_node(node);
        let old = rec.migration;
        self.obs
            .migration_aborted(old.id.0, Some(node), cause::NODE_DRAINED);
        if self.sched.contains_block(block) {
            // A newer request already re-pended the block; no successor.
            return;
        }
        let id = MigrationId(self.next_id);
        self.next_id += 1;
        // Jittered short hold-off so a whole drained queue doesn't slam
        // back into one successor node in lockstep; attempt carries over
        // unchanged (a drain is not a failure, so the retry budget is
        // untouched and a quiet drain run sees zero retries-exhausted).
        let backoff_unit = self.detector.as_ref().map_or_else(
            || FailureDetectorConfig::default().retry_backoff,
            |c| c.retry_backoff,
        );
        let not_before = self.clock + self.retry_jitter(backoff_unit);
        let migration = Migration {
            id,
            block: old.block,
            bytes: old.bytes,
            jobs: old.jobs,
            replicas: old.replicas,
            attempt: old.attempt,
            dest_tier: 0,
        };
        self.obs
            .migration_pending_why(id.0, block, migration.bytes, None, cause::DRAIN_RETARGET);
        self.obs.counter_add("membership.drain_retargets", 1);
        self.sched.insert(migration, rec.seq, rec.hint, not_before);
    }

    /// Whether a draining `node` has fully emptied: nothing pending is
    /// targeted at it and nothing bound to it awaits completion. Only
    /// then is [`Master::decommission`] safe.
    pub fn drain_complete(&self, node: NodeId) -> bool {
        self.det[node.index()].health == NodeHealth::Draining
            && self.sched.targeted_len(node) == 0
            && !self.bound_records.values().any(|r| r.node == node)
    }

    /// Remove a fully drained node from the cluster. Returns `false` (and
    /// does nothing) unless [`Master::drain_complete`] holds — callers
    /// poll until the queues empty. The slot stays allocated (node ids
    /// are stable) but the node is never a candidate and never bound work
    /// until it re-joins.
    pub fn decommission(&mut self, node: NodeId) -> bool {
        if !self.drain_complete(node) {
            return false;
        }
        // Its memory buffers leave the cluster with it.
        self.migrated.retain(|_, &mut n| n != node);
        self.ignem_bindings.retain(|_, &mut n| n != node);
        let d = &mut self.det[node.index()];
        *d = DetectorState::default();
        d.removed = true;
        self.obs.counter_add("membership.decommissions", 1);
        self.sync_node(node);
        true
    }

    /// (Re-)admit `node` to the cluster in the `Joining` state: cost
    /// estimate reset to the prior, empty queue view, candidacy restored
    /// under the admission ramp. Works both for a brand-new node and for
    /// one previously decommissioned.
    pub fn join_node(&mut self, node: NodeId) {
        let i = node.index();
        self.nodes[i] = NodeState {
            spb: self.default_spb,
            queued_bytes: 0.0,
            up: true,
        };
        // Stale buffer records from a previous life must not route reads.
        self.migrated.retain(|_, &mut n| n != node);
        self.det[i] = DetectorState {
            health: NodeHealth::Joining,
            ..DetectorState::default() // last_heartbeat: None re-arms
        };
        self.obs.counter_add("membership.joins", 1);
        self.sync_node(node);
    }

    // ------------------------------------------------------------------
    // checkpoint / restore
    // ------------------------------------------------------------------

    /// Capture a deterministic snapshot of the master's soft state:
    /// scheduler entries in admission order, per-node estimates and
    /// detector/membership state, the reference and buffer maps, and the
    /// outstanding bindings. Two masters in the same state produce
    /// byte-identical checkpoints once encoded (all maps are `BTreeMap`s
    /// and the pending list is sorted by admission stamp).
    pub fn checkpoint(&self) -> MasterCheckpoint {
        let mut pending: Vec<PendingCheckpoint> = self
            .sched
            .entries()
            .map(|e| PendingCheckpoint {
                migration: e.migration.clone(),
                seq: e.seq,
                hint: e.hint,
                not_before: e.not_before,
            })
            .collect();
        pending.sort_by_key(|p| p.seq);
        MasterCheckpoint {
            version: CHECKPOINT_VERSION,
            policy: self.policy,
            order: self.sched.order(),
            next_id: self.next_id,
            clock: self.clock,
            stats: self.stats,
            nodes: self
                .nodes
                .iter()
                .zip(&self.det)
                .map(|(s, d)| NodeCheckpoint {
                    spb: s.spb,
                    queued_bytes: s.queued_bytes,
                    up: s.up,
                    health: d.health,
                    strikes: d.strikes.iter().copied().collect(),
                    quarantined_until: d.quarantined_until,
                    probation_block: d.probation_block,
                    removed: d.removed,
                    join_completed: d.join_completed,
                })
                .collect(),
            pending,
            migrated: self.migrated.iter().map(|(&b, &n)| (b, n)).collect(),
            ignem_bindings: self.ignem_bindings.iter().map(|(&b, &n)| (b, n)).collect(),
            job_blocks: self
                .job_blocks
                .iter()
                .map(|(&j, bs)| (j, bs.clone()))
                .collect(),
            bound: self
                .bound_records
                .values()
                .map(|r| BoundCheckpoint {
                    node: r.node,
                    bound_at: r.bound_at,
                    est_secs_at_bind: r.est_secs_at_bind,
                    hint: r.hint,
                    seq: r.seq,
                    migration: r.migration.clone(),
                })
                .collect(),
        }
    }

    /// Rebuild the master's soft state from a checkpoint taken by a
    /// same-shaped master (same policy, same node count). Heartbeat
    /// deadlines restore *unarmed* — they re-arm at the first health
    /// check after restart, so reloading a checkpoint never mass-suspects
    /// a fleet that was merely unobserved during the outage. The RNG is
    /// deliberately not part of the snapshot: it only drives Ignem's
    /// random replica choice and the retry jitter, and the restarted
    /// process seeds its own.
    pub fn restore_from(&mut self, cp: &MasterCheckpoint) -> Result<(), String> {
        if cp.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} (this master speaks {})",
                cp.version, CHECKPOINT_VERSION
            ));
        }
        if cp.policy != self.policy {
            return Err(format!(
                "checkpoint policy {:?} != master policy {:?}",
                cp.policy, self.policy
            ));
        }
        if cp.nodes.len() != self.nodes.len() {
            return Err(format!(
                "checkpoint has {} nodes, master has {}",
                cp.nodes.len(),
                self.nodes.len()
            ));
        }
        let in_range = |n: NodeId| n.index() < self.nodes.len();
        for p in &cp.pending {
            if let Some(bad) = p.migration.replicas.iter().find(|&&n| !in_range(n)) {
                return Err(format!(
                    "pending {} replica {bad} out of range",
                    p.migration.block
                ));
            }
        }
        for b in &cp.bound {
            if !in_range(b.node) {
                return Err(format!(
                    "bound {} node {} out of range",
                    b.migration.block, b.node
                ));
            }
        }
        self.sched.reset(self.default_spb);
        self.sched.set_order(cp.order);
        for (i, n) in cp.nodes.iter().enumerate() {
            self.nodes[i] = NodeState {
                spb: n.spb,
                queued_bytes: n.queued_bytes,
                up: n.up,
            };
            self.det[i] = DetectorState {
                last_heartbeat: None, // re-arm: no mass-suspect after restart
                health: n.health,
                strikes: n.strikes.iter().copied().collect(),
                quarantined_until: n.quarantined_until,
                probation_block: n.probation_block,
                removed: n.removed,
                join_completed: n.join_completed,
            };
        }
        self.migrated = cp.migrated.iter().copied().collect();
        self.ignem_bindings = cp.ignem_bindings.iter().copied().collect();
        self.job_blocks = cp.job_blocks.iter().cloned().collect();
        self.bound_records.clear();
        for b in &cp.bound {
            if self
                .bound_records
                .insert(
                    b.migration.block,
                    BoundRecord {
                        node: b.node,
                        bound_at: b.bound_at,
                        est_secs_at_bind: b.est_secs_at_bind,
                        hint: b.hint,
                        seq: b.seq,
                        migration: b.migration.clone(),
                    },
                )
                .is_some()
            {
                return Err(format!("duplicate bound block {}", b.migration.block));
            }
        }
        // Re-insert pending silently: the spans were never closed (the
        // checkpoint captured them mid-life), so re-opening them would
        // double-count pending transitions.
        for p in &cp.pending {
            if self.sched.contains_block(p.migration.block) {
                return Err(format!("duplicate pending block {}", p.migration.block));
            }
            self.sched
                .insert(p.migration.clone(), p.seq, p.hint, p.not_before);
        }
        self.next_id = self.next_id.max(cp.next_id);
        self.clock = self.clock.max(cp.clock);
        self.stats = cp.stats;
        self.sync_all_nodes();
        Ok(())
    }
}

impl simkit::audit::Audit for Master {
    /// Master-side invariants:
    ///
    /// * every pending migration carries at least one interested job, a
    ///   positive size, and an in-range target (§III-A1's "bind once"
    ///   per-block uniqueness is structural now: the scheduler's block
    ///   index cannot hold two entries for one block, and
    ///   [`crate::sched`]'s own audit cross-checks every index);
    /// * the scheduler's per-node snapshot mirrors the master's live view
    ///   (exact when `spb_epsilon` is 0 — with a dampening epsilon the
    ///   snapshot is allowed to lag by design);
    /// * per-node state from heartbeats is sane: cost estimates finite and
    ///   positive (§IV-A), queued-byte views finite and non-negative;
    /// * buffering records point at nodes that are up (§III-C2: a dead
    ///   node's records are dropped with it).
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "master";
        for e in self.sched.entries() {
            let block = e.migration.block;
            report.check(
                !e.migration.jobs.is_empty(),
                c,
                "every pending migration has an interested job",
                || format!("{block} has no job references"),
            );
            report.check(
                e.migration.bytes > 0,
                c,
                "every pending migration moves at least one byte",
                || format!("{block} is zero-sized"),
            );
            if let Some(t) = e.target {
                report.check(
                    t.index() < self.nodes.len(),
                    c,
                    "targets index a known node",
                    || format!("{block} targets out-of-range {t}"),
                );
            }
        }
        if self.sched.config().spb_epsilon == 0.0 {
            for (i, s) in self.nodes.iter().enumerate() {
                let node = NodeId(i as u32);
                let (spb, queued, candidate) = self.sched.node_snapshot(i);
                report.check(
                    spb == s.spb && queued == s.queued_bytes,
                    c,
                    "scheduler load snapshot mirrors the master's live view",
                    || {
                        format!(
                            "node {i}: snapshot ({spb}, {queued}) vs live ({}, {})",
                            s.spb, s.queued_bytes
                        )
                    },
                );
                report.check(
                    candidate == (s.up && self.targetable(node)),
                    c,
                    "scheduler candidacy snapshot mirrors health gating",
                    || format!("node {i}: snapshot candidate = {candidate}"),
                );
            }
        }
        self.sched.audit(report);
        for (i, s) in self.nodes.iter().enumerate() {
            report.check(
                s.spb.is_finite() && s.spb > 0.0,
                c,
                "§IV-A: per-node cost estimates are finite and positive",
                || format!("node {i}: spb = {}", s.spb),
            );
            report.check(
                s.queued_bytes.is_finite() && s.queued_bytes >= 0.0,
                c,
                "per-node queued-byte views are finite and non-negative",
                || format!("node {i}: queued_bytes = {}", s.queued_bytes),
            );
        }
        for (&block, &node) in &self.migrated {
            report.check(
                node.index() < self.nodes.len() && self.nodes[node.index()].up,
                c,
                "§III-C2: buffering records point at live nodes",
                || format!("{block} recorded on {node}, which is not up"),
            );
        }
        for (&block, &node) in &self.ignem_bindings {
            report.check(
                node.index() < self.nodes.len(),
                c,
                "Ignem bindings index a known node",
                || format!("{block} bound to out-of-range {node}"),
            );
        }
        for (&block, rec) in &self.bound_records {
            report.check(
                rec.node.index() < self.nodes.len(),
                c,
                "bound records index a known node",
                || format!("{block} bound on out-of-range {}", rec.node),
            );
            report.check(
                rec.migration.block == block,
                c,
                "bound records are keyed by their migration's block",
                || format!("record for {block} holds {}", rec.migration.block),
            );
        }
        if self.detector.is_some() {
            for (i, d) in self.det.iter().enumerate() {
                report.check(
                    d.probation_block.is_none() || d.health == NodeHealth::Probation,
                    c,
                    "only probation nodes hold a probation migration",
                    || format!("node {i} is {:?} with a probation block", d.health),
                );
                report.check(
                    d.health != NodeHealth::Quarantined || d.quarantined_until > SimTime::ZERO,
                    c,
                    "quarantines always carry a lift deadline",
                    || format!("node {i} quarantined with no deadline"),
                );
            }
        }
        for (i, d) in self.det.iter().enumerate() {
            let node = NodeId(i as u32);
            report.check(
                !d.removed || d.health == NodeHealth::Healthy,
                c,
                "removed nodes carry no residual health verdict",
                || format!("removed node {i} is {:?}", d.health),
            );
            if d.removed || d.health == NodeHealth::Draining {
                report.check(
                    self.sched.targeted_len(node) == 0 || d.health == NodeHealth::Draining,
                    c,
                    "nothing pending is targeted at a removed node",
                    || format!("node {i} removed with targeted pending work"),
                );
            }
            if d.removed {
                report.check(
                    !self.bound_records.values().any(|r| r.node == node),
                    c,
                    "nothing is bound to a removed node",
                    || format!("node {i} removed with outstanding bindings"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn j(i: u64) -> JobId {
        JobId(i)
    }
    fn b(i: u64) -> BlockId {
        BlockId(i)
    }

    fn req(i: u64, replicas: &[u32]) -> BlockRequest {
        BlockRequest {
            block: b(i),
            bytes: 256 * MB,
            replicas: replicas.iter().map(|&x| n(x)).collect(),
        }
    }

    fn master(policy: MigrationPolicy) -> Master {
        Master::new(policy, 4, 140.0 * MB as f64, Rng::new(7))
    }

    #[test]
    fn dyrs_requests_enter_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        let out = m.request_migration(
            j(1),
            vec![req(1, &[0, 1, 2]), req(2, &[1, 2, 3])],
            EvictionMode::Implicit,
        );
        assert!(out.immediate.is_empty());
        assert_eq!(m.pending_len(), 2);
        assert_eq!(m.pending_bytes(), 512 * MB);
        assert_eq!(m.stats().requested_blocks, 2);
    }

    #[test]
    fn ignem_binds_immediately_to_a_replica() {
        let mut m = master(MigrationPolicy::Ignem);
        let out = m.request_migration(j(1), vec![req(1, &[0, 1, 2])], EvictionMode::Implicit);
        assert_eq!(out.immediate.len(), 1);
        let bound = &out.immediate[0];
        assert!(bound.migration.replicas.contains(&bound.node));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.stats().bound, 1);
    }

    #[test]
    fn ignem_spreads_uniformly_regardless_of_estimates() {
        let mut m = master(MigrationPolicy::Ignem);
        // node 0 is catastrophically slow — Ignem must not care
        m.on_heartbeat(n(0), 1.0, 0);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let out =
                m.request_migration(j(i), vec![req(i, &[0, 1, 2, 3])], EvictionMode::Implicit);
            counts[out.immediate[0].node.index()] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "Ignem skew: {counts:?}");
        }
    }

    #[test]
    fn disabled_policy_ignores_requests() {
        let mut m = master(MigrationPolicy::Disabled);
        let out = m.request_migration(j(1), vec![req(1, &[0])], EvictionMode::Explicit);
        assert!(out.immediate.is_empty() && out.add_refs.is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn duplicate_block_requests_merge_job_refs() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        assert_eq!(m.pending_len(), 1, "same block must not migrate twice");
        assert_eq!(m.stats().requested_blocks, 1);
    }

    #[test]
    fn request_for_buffered_block_yields_add_ref() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        let tgt = m.target_of(b(1)).unwrap();
        let taken = m.on_slave_pull(tgt, 4);
        assert_eq!(taken.len(), 1);
        m.on_migration_complete(tgt, b(1));
        let node = m.memory_location(b(1)).unwrap();
        let out = m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        assert_eq!(out.add_refs.len(), 1);
        assert_eq!(out.add_refs[0].0, node);
        assert_eq!(out.add_refs[0].2.job, j(2));
    }

    #[test]
    fn retarget_prefers_fast_nodes() {
        let mut m = master(MigrationPolicy::Dyrs);
        // node 0 is 100x slower per byte
        m.on_heartbeat(n(0), 100.0 / (140.0 * MB as f64), 0);
        m.on_heartbeat(n(1), 1.0 / (140.0 * MB as f64), 0);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[0, 1])],
            EvictionMode::Implicit,
        );
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(1)));
        assert_eq!(
            m.target_of(b(2)),
            Some(n(1)),
            "greedy still avoids the slow node"
        );
    }

    #[test]
    fn retarget_balances_equal_nodes() {
        let mut m = master(MigrationPolicy::Dyrs);
        let blocks: Vec<BlockRequest> = (0..10).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        let on0 = (0..10).filter(|&i| m.target_of(b(i)) == Some(n(0))).count();
        assert_eq!(on0, 5, "equal nodes split the batch evenly");
    }

    #[test]
    fn retarget_accounts_for_existing_queues() {
        let mut m = master(MigrationPolicy::Dyrs);
        let spb = 1.0 / (140.0 * MB as f64);
        m.on_heartbeat(n(0), spb, 10 * 256 * MB); // long backlog
        m.on_heartbeat(n(1), spb, 0);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(1)));
    }

    #[test]
    fn retarget_skips_down_replicas() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.set_node_up(n(1), false);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(0)));
        m.set_node_up(n(0), false);
        m.retarget();
        assert_eq!(m.target_of(b(1)), None, "no live replica → no target");
    }

    #[test]
    fn dyrs_pull_honours_targets_and_space() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_heartbeat(n(0), 1.0 / (140.0 * MB as f64), 0);
        // node 1 never heartbeats but has the prior; make it slow instead:
        m.on_heartbeat(n(1), 1.0, 0);
        let blocks: Vec<BlockRequest> = (0..5).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        // everything targeted at fast node 0
        let slow_pull = m.on_slave_pull(n(1), 10);
        assert!(
            slow_pull.is_empty(),
            "slow node must not bind targeted work"
        );
        let fast_pull = m.on_slave_pull(n(0), 3);
        assert_eq!(fast_pull.len(), 3, "space limits the take");
        assert_eq!(m.pending_len(), 2);
        // FIFO order preserved
        assert_eq!(fast_pull[0].block, b(0));
        assert_eq!(fast_pull[1].block, b(1));
    }

    #[test]
    fn naive_pull_takes_any_replica_fifo() {
        let mut m = master(MigrationPolicy::Naive);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[2, 3]), req(3, &[0, 2])],
            EvictionMode::Implicit,
        );
        // no retarget needed for naive
        let pull = m.on_slave_pull(n(0), 10);
        let got: Vec<BlockId> = pull.iter().map(|p| p.block).collect();
        assert_eq!(got, vec![b(1), b(3)]);
        assert_eq!(m.pending_len(), 1);
    }

    #[test]
    fn pull_from_down_node_is_empty() {
        let mut m = master(MigrationPolicy::Naive);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.set_node_up(n(0), false);
        assert!(m.on_slave_pull(n(0), 10).is_empty());
    }

    #[test]
    fn missed_read_cancels_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        assert!(m.on_block_read(b(1)));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.stats().missed_reads, 1);
        assert!(!m.on_block_read(b(1)), "second read is not a cancel");
    }

    #[test]
    fn evict_job_routes_to_hosting_nodes_and_cleans_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[0, 1])],
            EvictionMode::Explicit,
        );
        m.retarget();
        // bind and complete block 1 on its target
        let tgt = m.target_of(b(1)).unwrap();
        let taken = m.on_slave_pull(tgt, 1);
        assert_eq!(taken[0].block, b(1));
        m.on_migration_complete(tgt, b(1));
        // block 2 still pending; eviction should drop it and point at tgt
        let nodes = m.evict_job(j(1));
        assert_eq!(nodes, vec![tgt]);
        assert_eq!(m.pending_len(), 0, "sole-job pending entries dropped");
    }

    #[test]
    fn evict_job_keeps_shared_pending_entries() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        m.evict_job(j(1));
        assert_eq!(m.pending_len(), 1, "job 2 still wants the block");
    }

    #[test]
    fn node_failure_drops_its_buffered_blocks() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_migration_complete(n(2), b(9));
        assert_eq!(m.memory_location(b(9)), Some(n(2)));
        m.set_node_up(n(2), false);
        assert_eq!(m.memory_location(b(9)), None);
    }

    #[test]
    fn restart_clears_soft_state() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.on_migration_complete(n(0), b(5));
        m.restart();
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.memory_location(b(5)), None);
        // and it keeps working after restart
        m.request_migration(j(2), vec![req(2, &[0, 1])], EvictionMode::Implicit);
        assert_eq!(m.pending_len(), 1);
    }

    #[test]
    fn zero_byte_and_replica_less_requests_skipped() {
        let mut m = master(MigrationPolicy::Dyrs);
        let out = m.request_migration(
            j(1),
            vec![
                BlockRequest {
                    block: b(1),
                    bytes: 0,
                    replicas: vec![n(0)],
                },
                BlockRequest {
                    block: b(2),
                    bytes: 10,
                    replicas: vec![],
                },
            ],
            EvictionMode::Implicit,
        );
        assert!(out.immediate.is_empty() && out.add_refs.is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn sjf_order_puts_small_jobs_first() {
        let mut m = master(MigrationPolicy::Naive);
        m.set_order(crate::MigrationOrder::SmallestJobFirst);
        let hint = |bytes| JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: bytes,
        };
        m.request_migration_hinted(
            j(1),
            vec![req(1, &[0]), req(2, &[0])],
            EvictionMode::Implicit,
            hint(2 * 256 * MB),
        );
        m.request_migration_hinted(
            j(2),
            vec![req(3, &[0])],
            EvictionMode::Implicit,
            hint(256 * MB),
        );
        // job 2 is smaller → its block jumps the queue
        let pulled = m.on_slave_pull(n(0), 10);
        let order: Vec<BlockId> = pulled.iter().map(|p| p.block).collect();
        assert_eq!(order, vec![b(3), b(1), b(2)]);
    }

    #[test]
    fn edf_order_puts_imminent_jobs_first() {
        let mut m = master(MigrationPolicy::Naive);
        m.set_order(crate::MigrationOrder::EarliestDeadlineFirst);
        let hint = |secs| JobHint {
            expected_launch: simkit::SimTime::from_secs(secs),
            total_bytes: 0,
        };
        m.request_migration_hinted(j(1), vec![req(1, &[0])], EvictionMode::Implicit, hint(30));
        m.request_migration_hinted(j(2), vec![req(2, &[0])], EvictionMode::Implicit, hint(10));
        m.request_migration_hinted(j(3), vec![req(3, &[0])], EvictionMode::Implicit, hint(20));
        let pulled = m.on_slave_pull(n(0), 10);
        let order: Vec<BlockId> = pulled.iter().map(|p| p.block).collect();
        assert_eq!(order, vec![b(2), b(3), b(1)]);
    }

    #[test]
    fn fifo_order_is_arrival_order() {
        let mut m = master(MigrationPolicy::Naive);
        assert_eq!(m.order(), crate::MigrationOrder::Fifo);
        let hint = |bytes| JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: bytes,
        };
        // larger job arrives first and stays first under FIFO
        m.request_migration_hinted(j(1), vec![req(1, &[0])], EvictionMode::Implicit, hint(999));
        m.request_migration_hinted(j(2), vec![req(2, &[0])], EvictionMode::Implicit, hint(1));
        let pulled = m.on_slave_pull(n(0), 10);
        assert_eq!(pulled[0].block, b(1));
    }

    #[test]
    fn restart_then_reheartbeat_resumes_targeting() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_heartbeat(n(0), 1.0, 0); // slow before restart
        m.restart();
        // post-restart the stale slow estimate is gone (back to priors):
        // targeting works immediately and no node is unfairly avoided
        m.request_migration(j(5), vec![req(9, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert!(m.target_of(b(9)).is_some());
        // fresh heartbeats take effect as usual
        m.on_heartbeat(n(0), 1.0, 0); // slow again
        m.retarget();
        assert_eq!(m.target_of(b(9)), Some(n(1)));
    }

    #[test]
    fn evict_unknown_job_is_noop() {
        let mut m = master(MigrationPolicy::Dyrs);
        assert!(m.evict_job(j(42)).is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn ignem_read_target_tracks_liveness() {
        let mut m = master(MigrationPolicy::Ignem);
        let out = m.request_migration(j(1), vec![req(1, &[2])], EvictionMode::Implicit);
        let node = out.immediate[0].node;
        assert_eq!(m.ignem_read_target(b(1)), Some(node));
        m.set_node_up(node, false);
        assert_eq!(m.ignem_read_target(b(1)), None, "down node is no target");
        m.set_node_up(node, true);
        assert_eq!(m.ignem_read_target(b(1)), Some(node));
    }

    #[test]
    fn naive_pull_ignores_targets_entirely() {
        let mut m = master(MigrationPolicy::Naive);
        m.on_heartbeat(n(0), 1.0, 0); // catastrophically slow
        m.request_migration(j(1), vec![req(1, &[0])], EvictionMode::Implicit);
        // naive binds to any replica holder with space — even the slow one
        assert_eq!(m.on_slave_pull(n(0), 1).len(), 1);
    }

    #[test]
    fn straggler_avoidance_shape() {
        // End-of-batch behaviour (§V-F3): with a slow and a fast node and a
        // short tail of work, everything targets the fast node.
        let mut m = master(MigrationPolicy::Dyrs);
        let fast = 1.0 / (140.0 * MB as f64);
        m.on_heartbeat(n(0), fast * 20.0, 0); // slow node
        m.on_heartbeat(n(1), fast, 0);
        let blocks: Vec<BlockRequest> = (0..3).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        for i in 0..3 {
            assert_eq!(
                m.target_of(b(i)),
                Some(n(1)),
                "tail block {i} must avoid the slow node"
            );
        }
        // but with a long batch the slow node eventually gets some work
        let blocks: Vec<BlockRequest> = (10..80).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(2), blocks, EvictionMode::Implicit);
        m.retarget();
        let slow_count = (10..80)
            .filter(|&i| m.target_of(b(i)) == Some(n(0)))
            .count();
        assert!(
            slow_count > 0,
            "a long batch should use residual slow-node bandwidth"
        );
        assert!(slow_count < 35, "but far less than half");
    }

    // ------------------------------------------------------------------
    // gray-failure detector
    // ------------------------------------------------------------------

    use crate::config::FailureDetectorConfig;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn detector_master() -> Master {
        let mut m = master(MigrationPolicy::Dyrs);
        m.configure_detector(FailureDetectorConfig::default());
        for i in 0..4 {
            m.on_heartbeat_at(n(i), 1.0 / (140.0 * MB as f64), 0, t(0));
        }
        m
    }

    /// Bind one block (replicated on `reps`) and return its bound node.
    fn bind_one(m: &mut Master, block: u64, reps: &[u32]) -> NodeId {
        m.request_migration(j(block), vec![req(block, reps)], EvictionMode::Implicit);
        m.retarget();
        let tgt = m.target_of(b(block)).expect("live replica");
        let taken = m.on_slave_pull(tgt, 4);
        assert!(taken.iter().any(|mig| mig.block == b(block)));
        tgt
    }

    #[test]
    fn detector_off_for_non_delayed_binding_policies() {
        for policy in [MigrationPolicy::Ignem, MigrationPolicy::Disabled] {
            let mut m = master(policy);
            m.configure_detector(FailureDetectorConfig::default());
            assert!(!m.detector_enabled(), "{policy:?} holds no bindings");
        }
        let mut m = master(MigrationPolicy::Naive);
        m.configure_detector(FailureDetectorConfig::default());
        assert!(m.detector_enabled());
        m.configure_detector(FailureDetectorConfig {
            enabled: false,
            ..FailureDetectorConfig::default()
        });
        assert!(!m.detector_enabled());
    }

    #[test]
    fn missed_heartbeats_suspect_the_node_and_unbind_rebinds_elsewhere() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        // everyone else heartbeats on; the bound node goes dark
        for i in 0..4 {
            if n(i) != tgt {
                m.on_heartbeat_at(n(i), 1.0 / (140.0 * MB as f64), 0, t(4));
            }
        }
        let report = m.check_health(t(4));
        assert_eq!(report.newly_suspect, vec![tgt]);
        assert_eq!(m.node_health(tgt), NodeHealth::Suspect);
        // the caller confirms the revocation; a successor re-pends
        m.on_unbound(tgt, b(1), cause::NODE_SUSPECT);
        assert_eq!(m.pending_len(), 1);
        // suspect nodes are not candidates; the survivor is
        m.retarget();
        let new_target = m.target_of(b(1)).expect("survivor replica");
        assert_ne!(new_target, tgt);
        // backoff: the successor may not bind before clock + retry_backoff
        assert!(m.on_slave_pull(new_target, 4).is_empty(), "backoff gates");
        m.on_heartbeat_at(new_target, 1.0 / (140.0 * MB as f64), 0, t(6));
        let taken = m.on_slave_pull(new_target, 4);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].block, b(1));
        assert_eq!(taken[0].attempt, 1, "successor carries the retry count");
    }

    #[test]
    fn heartbeat_clears_suspicion() {
        let mut m = detector_master();
        m.check_health(t(4));
        assert_eq!(m.node_health(n(0)), NodeHealth::Suspect);
        m.on_heartbeat_at(n(0), 1.0, 0, t(5));
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
    }

    #[test]
    fn strikes_quarantine_then_probation_then_healthy() {
        let mut m = detector_master();
        // three stuck-stream strikes inside the window → quarantine
        for i in 0..3 {
            let tgt = bind_one(&mut m, i, &[0]);
            assert_eq!(tgt, n(0));
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        assert!(
            m.on_slave_pull(n(0), 8).is_empty(),
            "quarantined binds nothing"
        );
        // quarantined node is not a candidate even as sole replica: the
        // successors stay pending rather than being dropped
        m.retarget();
        assert!(m.pending_len() > 0);
        for blk in m.pending_block_ids().collect::<Vec<_>>() {
            assert_eq!(m.target_of(blk), None, "{blk} targeted a quarantined node");
        }
        // backoff elapses → probation admits exactly one migration
        m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(11));
        m.check_health(t(11));
        assert_eq!(m.node_health(n(0)), NodeHealth::Probation);
        m.retarget();
        let taken = m.on_slave_pull(n(0), 8);
        assert_eq!(taken.len(), 1, "probation allows one in-flight migration");
        assert!(m.on_slave_pull(n(0), 8).is_empty(), "second pull gated");
        // completing the probation migration closes the circuit
        m.on_migration_complete(n(0), taken[0].block);
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
        m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(13));
        assert!(!m.on_slave_pull(n(0), 8).is_empty(), "healthy again");
    }

    #[test]
    fn quarantine_auto_dumps_the_flight_recorder_naming_the_node() {
        let obs = ObsHandle::new();
        let mut m = detector_master();
        m.attach_obs(obs.clone());
        // Three stuck-stream strikes inside the window force a quarantine
        // — the crash the flight recorder exists to explain.
        for i in 0..3 {
            let tgt = bind_one(&mut m, i, &[0]);
            assert_eq!(tgt, n(0));
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        let dumps = obs.auto_flight_dumps();
        if !obs.is_enabled() {
            assert!(dumps.is_empty(), "no-op handles never dump");
            return;
        }
        assert_eq!(dumps.len(), 1, "exactly one quarantine, one dump");
        let d = &dumps[0];
        assert_eq!(d.reason, "node-quarantined");
        assert_eq!(d.node, Some(0), "the dump names the quarantined node");
        // The ring holds the span history that led here: the striking
        // aborts on node 0, then the marker entry stamped at dump time.
        assert!(
            d.entries
                .iter()
                .any(|e| e.node == Some(0) && e.cause == cause::STUCK_STREAM),
            "recent transitions explain the strikes: {:?}",
            d.entries
        );
        let marker = d.entries.last().expect("ring is not empty");
        assert_eq!(marker.cause, "node-quarantined");
        assert_eq!(
            d.entries_for(0).count(),
            d.entries.iter().filter(|e| e.node == Some(0)).count(),
            "per-node filter matches a manual scan"
        );
    }

    #[test]
    fn bounded_retry_gives_up_after_max_attempts() {
        let mut m = detector_master();
        m.configure_detector(FailureDetectorConfig {
            max_attempts: 3,
            quarantine_strikes: 100, // isolate the retry budget
            ..FailureDetectorConfig::default()
        });
        bind_one(&mut m, 1, &[0]);
        let mut clock = 0;
        for attempt in 1..3u32 {
            m.on_unbound(n(0), b(1), cause::STUCK_STREAM);
            assert_eq!(m.pending_len(), 1, "attempt {attempt} re-pends");
            // advance past the backoff and re-bind
            clock += 10;
            m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(clock));
            m.retarget();
            let taken = m.on_slave_pull(n(0), 4);
            assert_eq!(taken.len(), 1);
            assert_eq!(taken[0].attempt, attempt);
        }
        // third unbind exhausts the budget: no successor
        m.on_unbound(n(0), b(1), cause::STUCK_STREAM);
        assert_eq!(m.pending_len(), 0, "retries exhausted → chain ends");
    }

    #[test]
    fn node_down_repends_bound_work_without_a_strike() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.set_node_up(tgt, false);
        assert_eq!(m.pending_len(), 1, "fail-stop re-pends the binding");
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy, "crash ≠ strike");
        m.retarget();
        let new_target = m.target_of(b(1)).expect("survivor");
        assert_ne!(new_target, tgt);
    }

    #[test]
    fn stuck_streams_are_reported_after_the_deadline() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        // keep the node heartbeating (not suspect), but the migration
        // never completes: past the floor deadline it is flagged
        m.on_heartbeat_at(tgt, 1.0 / (140.0 * MB as f64), 256 * MB, t(20));
        assert!(m.check_health(t(20)).stuck.is_empty(), "deadline not yet");
        m.on_heartbeat_at(tgt, 1.0 / (140.0 * MB as f64), 256 * MB, t(21));
        let report = m.check_health(t(21));
        assert_eq!(report.stuck, vec![(tgt, b(1))]);
    }

    #[test]
    fn discard_bound_forgets_without_strike_or_successor() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.discard_bound(b(1));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy);
        assert!(m.check_health(t(30)).stuck.is_empty(), "record is gone");
    }

    #[test]
    fn stale_unbound_is_ignored() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.on_migration_complete(tgt, b(1));
        // a stale revocation after completion must not strike or re-pend
        m.on_unbound(tgt, b(1), cause::STUCK_STREAM);
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy);
    }

    #[test]
    fn drain_blocks_new_binds_and_retargets_queued_work() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        let bound = m.drain_node(tgt);
        assert_eq!(bound, vec![b(1)]);
        assert_eq!(m.node_health(tgt), NodeHealth::Draining);
        assert_eq!(m.membership(tgt), Membership::Draining);
        assert!(m.on_slave_pull(tgt, 4).is_empty(), "draining → no new work");
        m.on_drain_unbound(tgt, b(1));
        assert_eq!(m.pending_len(), 1, "successor re-pended");
        m.retarget();
        let successor = m.target_of(b(1)).expect("live replica");
        assert_ne!(successor, tgt);
        // The jittered hold-off (< 0.5 s) expires before the next beat.
        m.on_heartbeat_at(successor, 1.0 / (140.0 * MB as f64), 0, t(1));
        let taken = m.on_slave_pull(successor, 4);
        assert_eq!(taken.len(), 1);
        assert_eq!(
            taken[0].attempt, 0,
            "a drain is not a failure: retry budget untouched"
        );
    }

    #[test]
    fn decommission_waits_for_queues_to_empty() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        let other = if tgt == n(0) { n(1) } else { n(0) };
        m.drain_node(tgt);
        assert!(!m.drain_complete(tgt), "binding still outstanding");
        assert!(!m.decommission(tgt), "refused until queues empty");
        m.on_migration_complete(tgt, b(1)); // in-flight stream finishes
        assert!(m.drain_complete(tgt));
        assert!(m.decommission(tgt));
        assert_eq!(m.membership(tgt), Membership::Removed);
        assert_eq!(
            m.memory_location(b(1)),
            None,
            "buffers leave the cluster with the node"
        );
        // A removed node is never a candidate and never bound work.
        m.request_migration(
            j(2),
            vec![req(2, &[tgt.0, other.0])],
            EvictionMode::Implicit,
        );
        m.retarget();
        assert_eq!(m.target_of(b(2)), Some(other));
        assert!(m.on_slave_pull(tgt, 4).is_empty());
    }

    #[test]
    fn join_ramp_caps_pulls_until_graduation() {
        let mut m = detector_master();
        m.join_node(n(0));
        assert_eq!(m.membership(n(0)), Membership::Joining);
        let blocks: Vec<BlockRequest> = (0..8).map(|i| req(i, &[0])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        let first = m.on_slave_pull(n(0), 8);
        assert_eq!(first.len(), 1, "fresh joiner starts with one");
        m.on_migration_complete(n(0), first[0].block);
        let second = m.on_slave_pull(n(0), 8);
        assert_eq!(second.len(), 2, "ramp widens with completions");
        for mig in &second {
            m.on_migration_complete(n(0), mig.block);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Joining, "3 of 4 done");
        let third = m.on_slave_pull(n(0), 8);
        assert!(!third.is_empty());
        m.on_migration_complete(n(0), third[0].block);
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy, "ramp complete");
        assert_eq!(m.membership(n(0)), Membership::Active);
    }

    #[test]
    fn drain_retarget_jitter_is_seeded_and_bounded() {
        let run = || {
            let mut m = detector_master();
            let tgt = bind_one(&mut m, 1, &[0, 1]);
            m.drain_node(tgt);
            m.on_drain_unbound(tgt, b(1));
            m.checkpoint().pending[0].not_before
        };
        let a = run();
        assert_eq!(a, run(), "same seed → same jitter");
        assert!(
            a < t(0) + simkit::SimDuration::from_millis(500),
            "jitter bounded by half the retry backoff, got {a:?}"
        );
    }

    #[test]
    fn checkpoint_preserves_membership_and_pending() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.drain_node(tgt);
        m.on_drain_unbound(tgt, b(1));
        m.join_node(n(3));
        let cp = m.checkpoint();
        let mut m2 = master(MigrationPolicy::Dyrs);
        m2.configure_detector(FailureDetectorConfig::default());
        m2.restore_from(&cp).expect("same-shape restore");
        assert_eq!(m2.membership(tgt), Membership::Draining);
        assert_eq!(m2.membership(n(3)), Membership::Joining);
        assert_eq!(m2.pending_len(), 1);
        assert_eq!(m2.checkpoint(), cp, "restore is lossless");
    }

    #[test]
    fn restore_rearms_heartbeat_deadlines() {
        let mut m = detector_master();
        let cp = m.checkpoint();
        let mut m2 = master(MigrationPolicy::Dyrs);
        m2.configure_detector(FailureDetectorConfig::default());
        m2.restore_from(&cp).expect("same-shape restore");
        // Long after the checkpoint: deadlines re-arm, no mass-suspect.
        assert!(
            m2.check_health(t(1000)).newly_suspect.is_empty(),
            "restored deadlines are unarmed"
        );
        // Once re-armed, silence counts again.
        assert!(
            !m2.check_health(t(2000)).newly_suspect.is_empty(),
            "post-restart silence is still a fault"
        );
    }

    #[test]
    fn master_restart_resets_detector_state() {
        let mut m = detector_master();
        for i in 0..3 {
            bind_one(&mut m, i, &[0]);
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        m.restart();
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
        // no mass-suspect storm: deadlines re-arm at the first check
        let report = m.check_health(t(100));
        assert!(report.newly_suspect.is_empty());
    }
}
