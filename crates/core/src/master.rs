//! The DYRS master (paper §III, §III-D).
//!
//! Lives inside the NameNode in the real system. Responsibilities:
//!
//! 1. accept migration/eviction requests for files (already mapped to
//!    blocks by the namespace),
//! 2. run the **Algorithm 1** targeting pass over the pending list in a
//!    background thread (here: a periodic [`Master::retarget`] call),
//! 3. answer slave pulls with migrations **bound at the last moment**
//!    (delayed binding, §III-A1),
//! 4. track where blocks are buffered so reads can be redirected and
//!    evictions routed.
//!
//! All state is soft (§III-C): [`Master::restart`] drops everything and
//! the system degrades to plain HDFS until slaves repopulate it.

use crate::config::{FailureDetectorConfig, SchedulerConfig};
use crate::policy::{MigrationOrder, MigrationPolicy};
use crate::sched::{RetargetStats, Scheduler};
use crate::types::{BoundMigration, EvictionMode, JobRef, Migration, MigrationId};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use dyrs_obs::{cause, ObsHandle};
use serde::{Deserialize, Serialize};
use simkit::{Rng, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Scheduling hints about the requesting job, used by the non-FIFO
/// migration orders (future-work policies, see
/// [`MigrationOrder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobHint {
    /// When the job is expected to start reading (submission + platform
    /// overhead + any artificial lead-time).
    pub expected_launch: simkit::SimTime,
    /// The job's total input size in bytes.
    pub total_bytes: u64,
}

impl Default for JobHint {
    fn default() -> Self {
        JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: 0,
        }
    }
}

/// A client's request to migrate one block.
///
/// Wire payload (`dyrs-net`'s `Message::RequestMigration` carries a list
/// of these). `replicas` keeps submission order — a `Vec`, not a hash
/// set — so the encoded bytes are identical across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRequest {
    /// Block to migrate.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// Disk replica locations.
    pub replicas: Vec<NodeId>,
}

/// What a migration request produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Migrations bound immediately (Ignem only).
    pub immediate: Vec<BoundMigration>,
    /// Blocks already buffered somewhere: the hosting slave must add a job
    /// reference (no new migration needed).
    pub add_refs: Vec<(NodeId, BlockId, JobRef)>,
}

/// Per-slave knowledge at the master, fed by heartbeats (§III-D: "During
/// heartbeats, the master stores each slave's estimate of migration time
/// and the number of blocks currently queued on the slave").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct NodeState {
    /// Estimated migration cost, seconds per byte.
    spb: f64,
    /// Bytes queued (or actively migrating) on the slave.
    queued_bytes: f64,
    /// Liveness, mirrored from the file system's view.
    up: bool,
}

/// Counters for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Blocks ever requested for migration.
    pub requested_blocks: u64,
    /// Bytes ever requested.
    pub requested_bytes: u64,
    /// Migrations handed to slaves (bound).
    pub bound: u64,
    /// Migrations reported complete.
    pub completed: u64,
    /// Pending migrations cancelled because the block was read first.
    pub missed_reads: u64,
    /// Retargeting passes executed.
    pub retarget_passes: u64,
}

/// A node's health as classified by the gray-failure detector. Only
/// `Healthy` and `Probation` nodes are Algorithm 1 candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Heartbeating on time; full candidacy.
    Healthy,
    /// Missed its heartbeat deadline; its bound-but-unstarted migrations
    /// are unbound and it leaves candidacy until it heartbeats again.
    Suspect,
    /// Struck out (`quarantine_strikes` within `strike_window`); barred
    /// from candidacy until the quarantine backoff elapses.
    Quarantined,
    /// Quarantine backoff elapsed; allowed exactly one probation
    /// migration, whose completion restores `Healthy`.
    Probation,
}

impl NodeHealth {
    /// Stable lowercase name used in exports and test output.
    pub fn name(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Quarantined => "quarantined",
            NodeHealth::Probation => "probation",
        }
    }

    /// Numeric encoding for the `node.health` gauge (0 = healthy,
    /// 1 = suspect, 2 = probation, 3 = quarantined — ordered by how far
    /// the node is from full candidacy).
    pub fn as_gauge(self) -> f64 {
        match self {
            NodeHealth::Healthy => 0.0,
            NodeHealth::Suspect => 1.0,
            NodeHealth::Probation => 2.0,
            NodeHealth::Quarantined => 3.0,
        }
    }
}

/// Per-node detector bookkeeping.
#[derive(Debug, Clone)]
struct DetectorState {
    /// Last heartbeat instant; `None` means the deadline is not armed
    /// (fresh start, node restart, or master restart) and arms at the
    /// next health check — so a resuming master never mass-suspects
    /// nodes it simply was not listening to.
    last_heartbeat: Option<SimTime>,
    health: NodeHealth,
    /// Strike instants inside the sliding window.
    strikes: VecDeque<SimTime>,
    quarantined_until: SimTime,
    /// The one in-flight probation migration, when on probation.
    probation_block: Option<BlockId>,
}

impl Default for DetectorState {
    fn default() -> Self {
        DetectorState {
            last_heartbeat: None,
            health: NodeHealth::Healthy,
            strikes: VecDeque::new(),
            quarantined_until: SimTime::ZERO,
            probation_block: None,
        }
    }
}

/// A binding the master is tracking until the slave reports completion;
/// the raw material for stuck detection and for minting retry successors.
#[derive(Debug, Clone)]
struct BoundRecord {
    node: NodeId,
    bound_at: SimTime,
    /// The node's estimated stream time (`spb · bytes`) when the binding
    /// was made. The stuck deadline is measured against this snapshot, not
    /// the live estimate: a node that degrades after binding inflates its
    /// own estimate, and judging it by the inflated number would let a
    /// crawling queue keep its work forever.
    est_secs_at_bind: f64,
    hint: JobHint,
    migration: Migration,
}

/// What one [`Master::check_health`] pass found. The caller (the sim
/// driver, or an RPC layer in a real deployment) owns the slave channel,
/// so the master reports *candidates* and the caller confirms them against
/// the slave before calling [`Master::on_unbound`] / [`Master::discard_bound`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Nodes that just transitioned to `Suspect` (or failed probation):
    /// their bound-but-unstarted migrations should be revoked and
    /// unbound.
    pub newly_suspect: Vec<NodeId>,
    /// Bound migrations past their progress deadline, as (bound node,
    /// block) pairs.
    pub stuck: Vec<(NodeId, BlockId)>,
}

/// The DYRS master state machine.
///
/// ```
/// use dyrs::master::{BlockRequest, Master};
/// use dyrs::types::EvictionMode;
/// use dyrs::MigrationPolicy;
/// use dyrs_cluster::NodeId;
/// use dyrs_dfs::{BlockId, JobId};
/// use simkit::Rng;
///
/// const MB: f64 = (1u64 << 20) as f64;
/// let mut master = Master::new(MigrationPolicy::Dyrs, 3, 140.0 * MB, Rng::new(1));
///
/// // heartbeats teach the master each slave's migration cost
/// master.on_heartbeat(NodeId(0), 1.0 / (140.0 * MB), 0); // fast
/// master.on_heartbeat(NodeId(1), 1.0 / (10.0 * MB), 0);  // slow
/// master.on_heartbeat(NodeId(2), 1.0 / (140.0 * MB), 0); // fast
///
/// // a client asks to migrate one block replicated on nodes 0 and 1
/// master.request_migration(
///     JobId(7),
///     vec![BlockRequest {
///         block: BlockId(0),
///         bytes: 256 << 20,
///         replicas: vec![NodeId(0), NodeId(1)],
///     }],
///     EvictionMode::Implicit,
/// );
///
/// // Algorithm 1 targets the replica expected to finish earliest …
/// master.retarget();
/// assert_eq!(master.target_of(BlockId(0)), Some(NodeId(0)));
///
/// // … and binding happens lazily, when the *targeted* slave pulls:
/// assert!(master.on_slave_pull(NodeId(1), 4).is_empty(), "slow node gets nothing");
/// let bound = master.on_slave_pull(NodeId(0), 4);
/// assert_eq!(bound.len(), 1);
/// ```
pub struct Master {
    policy: MigrationPolicy,
    nodes: Vec<NodeState>,
    /// The indexed pending-migration store and Algorithm 1 engine. All
    /// pending bookkeeping goes through its API (`pending-fence` lint).
    sched: Scheduler,
    /// block → node currently buffering it.
    migrated: BTreeMap<BlockId, NodeId>,
    /// Ignem only: block → the replica chosen at submission time. Ignem's
    /// read path trusts this binding — reads are directed to the chosen
    /// node whether or not the migration has completed, which is why
    /// Fig. 8 shows Ignem's reads staying uniform even with a slow node.
    ignem_bindings: BTreeMap<BlockId, NodeId>,
    /// job → blocks it requested (eviction routing).
    job_blocks: BTreeMap<JobId, Vec<BlockId>>,
    rng: Rng,
    next_id: u64,
    stats: MasterStats,
    /// Prior for a node we have not heard a heartbeat from yet.
    default_spb: f64,
    /// Lifecycle span + provenance recorder; disconnected unless the
    /// driver attached one.
    obs: ObsHandle,
    /// Gray-failure detector config; `None` = detector off (the paper's
    /// exact behavior).
    detector: Option<FailureDetectorConfig>,
    /// Per-node detector state (only meaningful while `detector` is on).
    det: Vec<DetectorState>,
    /// Bindings awaiting completion, tracked for stuck detection and
    /// retry successors.
    bound_records: BTreeMap<BlockId, BoundRecord>,
    /// The detector's monotone view of simulated time, advanced by
    /// [`Master::on_heartbeat_at`] and [`Master::check_health`].
    clock: SimTime,
}

impl Master {
    /// A master for `num_nodes` slaves under the given policy.
    ///
    /// `default_disk_bw` seeds the per-node cost prior (used only until
    /// the first heartbeat from each slave); `rng` drives Ignem's random
    /// replica choice.
    pub fn new(policy: MigrationPolicy, num_nodes: usize, default_disk_bw: f64, rng: Rng) -> Self {
        assert!(default_disk_bw > 0.0, "invalid disk bandwidth");
        Master {
            policy,
            nodes: vec![
                NodeState {
                    spb: 1.0 / default_disk_bw,
                    queued_bytes: 0.0,
                    up: true,
                };
                num_nodes
            ],
            sched: Scheduler::new(num_nodes, 1.0 / default_disk_bw),
            migrated: BTreeMap::new(),
            ignem_bindings: BTreeMap::new(),
            job_blocks: BTreeMap::new(),
            rng,
            next_id: 0,
            stats: MasterStats::default(),
            default_spb: 1.0 / default_disk_bw,
            obs: ObsHandle::default(),
            detector: None,
            det: vec![DetectorState::default(); num_nodes],
            bound_records: BTreeMap::new(),
            clock: SimTime::ZERO,
        }
    }

    /// Enable the gray-failure detector. Only meaningful under delayed
    /// binding (Dyrs / Naive): the other policies never hold master-side
    /// bindings to unbind.
    pub fn configure_detector(&mut self, cfg: FailureDetectorConfig) {
        if cfg.enabled && self.policy.delayed_binding() {
            self.detector = Some(cfg);
        } else {
            self.detector = None;
        }
        // Toggling the detector changes every node's candidacy rule.
        self.sync_all_nodes();
    }

    /// Select the scheduler engine and dirty-set thresholds (default:
    /// the incremental engine with an exact snapshot mirror).
    pub fn set_sched_config(&mut self, cfg: SchedulerConfig) {
        self.sched.set_config(cfg);
    }

    /// Push the master's live view of `node` — cost estimate, queued
    /// backlog, and candidacy (liveness ∧ detector health) — into the
    /// scheduler's scoring snapshot. Every mutation site calls this, so
    /// the snapshot trails the live view by at most the configured
    /// `spb_epsilon` (exact mirror at the default 0).
    fn sync_node(&mut self, node: NodeId) {
        let i = node.index();
        let s = self.nodes[i];
        self.sched.set_node_load(i, s.spb, s.queued_bytes);
        let candidate = s.up && self.targetable(node);
        self.sched.set_node_candidacy(i, candidate);
    }

    fn sync_all_nodes(&mut self) {
        for i in 0..self.nodes.len() {
            self.sync_node(NodeId(i as u32));
        }
    }

    /// Whether the gray-failure detector is active.
    pub fn detector_enabled(&self) -> bool {
        self.detector.is_some()
    }

    /// The detector's current classification of `node` (`Healthy` when
    /// the detector is off).
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        if self.detector.is_some() {
            self.det[node.index()].health
        } else {
            NodeHealth::Healthy
        }
    }

    /// Attach an observability recorder. Migration lifecycle transitions
    /// owned by the master (pending / targeted / bound / master-side
    /// aborts) and Algorithm 1 provenance are recorded through it.
    pub fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Select the pending-list discipline (default FIFO).
    pub fn set_order(&mut self, order: MigrationOrder) {
        self.sched.set_order(order);
    }

    /// The active pending-list discipline.
    pub fn order(&self) -> MigrationOrder {
        self.sched.order()
    }

    /// The active policy.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }

    /// Statistics so far.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Number of migrations waiting to be bound.
    pub fn pending_len(&self) -> usize {
        self.sched.len()
    }

    /// Total bytes waiting to be bound.
    pub fn pending_bytes(&self) -> u64 {
        self.sched.bytes()
    }

    /// The node a pending block is currently targeted at, if any.
    pub fn target_of(&self, block: BlockId) -> Option<NodeId> {
        self.sched.target_of(block)
    }

    /// Where a block is buffered, if anywhere.
    pub fn memory_location(&self, block: BlockId) -> Option<NodeId> {
        self.migrated.get(&block).copied()
    }

    /// Blocks awaiting binding, in ascending id order (exposed for
    /// auditing).
    pub fn pending_block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.sched.block_ids()
    }

    /// Every (block, hosting node) buffering record, in ascending block
    /// order (exposed for auditing).
    pub fn buffered_locations(&self) -> impl Iterator<Item = (BlockId, NodeId)> + '_ {
        self.migrated.iter().map(|(&b, &n)| (b, n))
    }

    /// The master's heartbeat-fed view of `node`'s queued backlog in
    /// bytes (exposed for auditing). Between heartbeats this can only
    /// overestimate the slave's true backlog: binds add to both sides
    /// synchronously, while completions and cancellations shrink the
    /// slave's side first.
    pub fn queued_bytes_view(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].queued_bytes
    }

    /// Ignem's submission-time binding for `block`, if the bound node is
    /// still up. Ignem's read path serves the block from this node (its
    /// disk until migration completes, its memory afterwards).
    pub fn ignem_read_target(&self, block: BlockId) -> Option<NodeId> {
        self.ignem_bindings
            .get(&block)
            .copied()
            .filter(|n| self.nodes[n.index()].up)
    }

    // ------------------------------------------------------------------
    // client requests
    // ------------------------------------------------------------------

    /// Handle a client migration request: `job` wants `blocks` in memory.
    ///
    /// * policy `Disabled` / `InstantRam`: no-op here (the simulator wires
    ///   InstantRam by pre-buffering outside the master);
    /// * `Ignem`: every block is bound immediately to a uniformly random
    ///   replica (§VI);
    /// * `Naive` / `Dyrs`: blocks join the pending list for delayed binding.
    ///
    /// Blocks already pending gain an extra job reference; blocks already
    /// buffered produce `add_refs` entries for the hosting slave.
    pub fn request_migration(
        &mut self,
        job: JobId,
        blocks: Vec<BlockRequest>,
        eviction: EvictionMode,
    ) -> RequestOutcome {
        self.request_migration_hinted(job, blocks, eviction, JobHint::default())
    }

    /// Like [`Master::request_migration`], with scheduling hints for the
    /// non-FIFO migration orders.
    pub fn request_migration_hinted(
        &mut self,
        job: JobId,
        blocks: Vec<BlockRequest>,
        eviction: EvictionMode,
        hint: JobHint,
    ) -> RequestOutcome {
        let mut out = RequestOutcome::default();
        if !self.policy.migrates() || self.policy == MigrationPolicy::InstantRam {
            return out;
        }
        let jref = JobRef { job, eviction };
        for req in blocks {
            if req.bytes == 0 || req.replicas.is_empty() {
                continue; // nothing to move / nowhere to read from
            }
            self.job_blocks.entry(job).or_default().push(req.block);
            if let Some(&node) = self.migrated.get(&req.block) {
                out.add_refs.push((node, req.block, jref));
                continue;
            }
            if self.sched.contains_block(req.block) {
                self.sched.add_job_ref(req.block, jref);
                continue;
            }
            self.stats.requested_blocks += 1;
            self.stats.requested_bytes += req.bytes;
            let migration = Migration {
                id: MigrationId(self.next_id),
                block: req.block,
                bytes: req.bytes,
                jobs: vec![jref],
                replicas: req.replicas,
                attempt: 0,
            };
            self.next_id += 1;
            self.obs
                .migration_pending(migration.id.0, req.block, req.bytes, Some(job));
            if self.policy == MigrationPolicy::Ignem {
                // Immediate random-replica binding; the block never enters
                // the pending list.
                let up: Vec<NodeId> = migration
                    .replicas
                    .iter()
                    .copied()
                    .filter(|n| self.nodes[n.index()].up)
                    .collect();
                if let Some(&node) = up.get(self.rng.below(up.len().max(1) as u64) as usize) {
                    self.nodes[node.index()].queued_bytes += migration.bytes as f64;
                    self.stats.bound += 1;
                    self.ignem_bindings.insert(migration.block, node);
                    self.obs
                        .migration_bound(migration.id.0, node, cause::IGNEM_IMMEDIATE);
                    out.immediate.push(BoundMigration { migration, node });
                    self.sync_node(node);
                } else {
                    self.obs
                        .migration_aborted(migration.id.0, None, cause::NO_LIVE_REPLICA);
                }
            } else {
                let seq = self.next_id; // ids are monotone → arrival order
                self.sched.insert(migration, seq, hint, SimTime::ZERO);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // heartbeats & liveness
    // ------------------------------------------------------------------

    /// Record a slave heartbeat: its migration-cost estimate (seconds per
    /// byte) and its queued backlog in bytes. Timeless variant for callers
    /// without a clock (keeps the heartbeat at the detector's current
    /// time, so deadlines never regress).
    pub fn on_heartbeat(&mut self, node: NodeId, secs_per_byte: f64, queued_bytes: u64) {
        let now = self.clock;
        self.on_heartbeat_at(node, secs_per_byte, queued_bytes, now);
    }

    /// Record a slave heartbeat at simulated time `now`: feeds the cost /
    /// backlog view and re-arms the node's failure-detector deadline. A
    /// heartbeat from a `Suspect` node clears the suspicion (its strike
    /// stays on the record).
    pub fn on_heartbeat_at(
        &mut self,
        node: NodeId,
        secs_per_byte: f64,
        queued_bytes: u64,
        now: SimTime,
    ) {
        self.clock = self.clock.max(now);
        let s = &mut self.nodes[node.index()];
        s.spb = secs_per_byte;
        s.queued_bytes = queued_bytes as f64;
        s.up = true;
        if self.detector.is_some() {
            let d = &mut self.det[node.index()];
            d.last_heartbeat = Some(self.clock);
            if d.health == NodeHealth::Suspect {
                d.health = NodeHealth::Healthy;
            }
        }
        self.sync_node(node);
    }

    /// Mark a slave up or down (mirrors the file system's liveness view).
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.nodes[node.index()].up = up;
        if !up {
            // Blocks buffered there are gone; pending targets get fixed by
            // the next retarget pass.
            self.migrated.retain(|_, &mut n| n != node);
            if self.detector.is_some() {
                // Fail-stop: the slave aborts its own queue when it dies;
                // the master re-pends successors so surviving replicas can
                // cover the work (no strike — this is a detected crash,
                // not a gray failure).
                let lost: Vec<BlockId> = self
                    .bound_records
                    .iter()
                    .filter(|(_, r)| r.node == node)
                    .map(|(&b, _)| b)
                    .collect();
                for block in lost {
                    self.respawn_bound(block, false);
                }
                let d = &mut self.det[node.index()];
                *d = DetectorState::default();
            }
        } else if self.detector.is_some() {
            // Re-arm the deadline at the next health check rather than
            // inheriting the pre-crash one.
            self.det[node.index()].last_heartbeat = None;
        }
        self.sync_node(node);
    }

    /// One failure-detector pass at simulated time `now`: classify nodes
    /// whose heartbeat deadline lapsed as `Suspect`, lift expired
    /// quarantines into `Probation`, and flag bound migrations past their
    /// progress deadline. The caller confirms the report against the
    /// slaves (which it owns) and feeds confirmed unbinds back through
    /// [`Master::on_unbound`] / [`Master::discard_bound`].
    pub fn check_health(&mut self, now: SimTime) -> HealthReport {
        let mut report = HealthReport::default();
        let Some(cfg) = self.detector.clone() else {
            return report;
        };
        self.clock = self.clock.max(now);
        let now = self.clock;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].up {
                continue;
            }
            let node = NodeId(i as u32);
            let d = &mut self.det[i];
            if d.health == NodeHealth::Quarantined && now >= d.quarantined_until {
                d.health = NodeHealth::Probation;
                d.probation_block = None;
                self.obs.counter_add("detector.probations", 1);
            }
            match d.last_heartbeat {
                None => d.last_heartbeat = Some(now), // arm the deadline
                Some(hb) => {
                    let lapsed = now.saturating_since(hb) > cfg.suspect_after;
                    if lapsed && matches!(d.health, NodeHealth::Healthy | NodeHealth::Probation) {
                        let failed_probation = d.health == NodeHealth::Probation;
                        d.health = NodeHealth::Suspect;
                        report.newly_suspect.push(node);
                        self.obs.counter_add("detector.suspects", 1);
                        self.strike(node, &cfg, now);
                        if failed_probation {
                            // A node that goes dark on probation has not
                            // earned its way back.
                            self.quarantine(node, &cfg, now);
                        }
                    }
                }
            }
        }
        for (&block, rec) in &self.bound_records {
            let i = rec.node.index();
            if !self.nodes[i].up {
                continue;
            }
            let deadline =
                simkit::SimDuration::from_secs_f64(rec.est_secs_at_bind * cfg.stuck_multiple)
                    .max(cfg.stuck_floor);
            if now.saturating_since(rec.bound_at) > deadline {
                report.stuck.push((rec.node, block));
            }
        }
        // Health transitions above change candidacy; push the new view.
        self.sync_all_nodes();
        report
    }

    /// Count one strike against `node` inside the sliding window;
    /// quarantine it when it strikes out.
    fn strike(&mut self, node: NodeId, cfg: &FailureDetectorConfig, now: SimTime) {
        self.obs.counter_add("detector.strikes", 1);
        let d = &mut self.det[node.index()];
        d.strikes.push_back(now);
        while let Some(&t) = d.strikes.front() {
            if now.saturating_since(t) > cfg.strike_window {
                d.strikes.pop_front();
            } else {
                break;
            }
        }
        if d.strikes.len() as u32 >= cfg.quarantine_strikes {
            self.quarantine(node, cfg, now);
        }
    }

    fn quarantine(&mut self, node: NodeId, cfg: &FailureDetectorConfig, now: SimTime) {
        let d = &mut self.det[node.index()];
        d.health = NodeHealth::Quarantined;
        d.quarantined_until = now + cfg.quarantine_backoff;
        d.probation_block = None;
        d.strikes.clear();
        self.obs.counter_add("detector.quarantines", 1);
        // Crash flight recorder: a quarantine is exactly the moment an
        // operator wants the recent span history, dumped and named.
        self.obs.flight_auto_dump("node-quarantined", Some(node));
    }

    /// A confirmed unbind: the caller revoked `block` from `node`'s queue
    /// (suspect node or stuck stream). Strikes the node, aborts the old
    /// span, and — while the bounded-retry budget lasts — re-pends a
    /// successor migration under a fresh id with deterministic exponential
    /// backoff, so Algorithm 1 can re-target a surviving replica.
    pub fn on_unbound(&mut self, node: NodeId, block: BlockId, why: &'static str) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        match self.bound_records.get(&block) {
            Some(rec) if rec.node == node => {}
            _ => return, // stale: completed or re-bound meanwhile
        }
        let rec = self.bound_records.remove(&block).expect("presence checked");
        let s = &mut self.nodes[node.index()];
        s.queued_bytes = (s.queued_bytes - rec.migration.bytes as f64).max(0.0);
        self.strike(node, &cfg, self.clock);
        self.sync_node(node);
        let old = rec.migration;
        let attempt = old.attempt + 1;
        if attempt >= cfg.max_attempts {
            // Bounded retry: give up on the chain; the jobs read from disk.
            self.obs
                .migration_aborted(old.id.0, Some(node), cause::RETRIES_EXHAUSTED);
            self.obs.counter_add("detector.retries_exhausted", 1);
            return;
        }
        self.obs.migration_aborted(old.id.0, Some(node), why);
        if self.sched.contains_block(block) {
            // A newer request already re-pended the block; no successor.
            return;
        }
        self.spawn_successor(old, attempt, rec.hint, true);
    }

    /// Forget a binding without a strike or a successor: the caller found
    /// the slave no longer holds it (completed, cancelled by a read,
    /// scavenged, ...) so the slave owned the span's terminal event.
    ///
    /// Deliberately leaves `queued_bytes` alone: the slave dropped the
    /// block before this call, so the node's next heartbeat report (often
    /// already the last one) excludes its bytes — decrementing here on top
    /// of that sync would push the master's view *below* the slave's true
    /// backlog, breaking the §III-D overestimate invariant. A stale
    /// overestimate until the next heartbeat is the safe direction.
    pub fn discard_bound(&mut self, block: BlockId) {
        self.bound_records.remove(&block);
    }

    /// Re-pend a bound migration whose node fail-stopped. The dying slave
    /// owns the old span's terminal event (`slave-restart`), so this mints
    /// the successor silently on the old id and loudly on the new one.
    fn respawn_bound(&mut self, block: BlockId, strike: bool) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        let Some(rec) = self.bound_records.remove(&block) else {
            return;
        };
        let s = &mut self.nodes[rec.node.index()];
        s.queued_bytes = (s.queued_bytes - rec.migration.bytes as f64).max(0.0);
        if strike {
            self.strike(rec.node, &cfg, self.clock);
        }
        self.sync_node(rec.node);
        let attempt = rec.migration.attempt + 1;
        if attempt >= cfg.max_attempts || self.sched.contains_block(block) {
            return;
        }
        self.spawn_successor(rec.migration, attempt, rec.hint, true);
    }

    /// Mint and enqueue the retry successor for an unbound migration.
    fn spawn_successor(&mut self, old: Migration, attempt: u32, hint: JobHint, backoff: bool) {
        let Some(cfg) = self.detector.clone() else {
            return;
        };
        let id = MigrationId(self.next_id);
        self.next_id += 1;
        let not_before = if backoff {
            // retry_backoff · 2^(attempt−1), exponent capped well below
            // overflow; attempt ≥ 1 here.
            self.clock
                + cfg
                    .retry_backoff
                    .mul_f64(f64::powi(2.0, (attempt - 1).min(16) as i32))
        } else {
            self.clock
        };
        let migration = Migration {
            id,
            block: old.block,
            bytes: old.bytes,
            jobs: old.jobs,
            replicas: old.replicas,
            attempt,
        };
        self.obs
            .migration_pending_why(id.0, old.block, old.bytes, None, cause::RETRY);
        self.obs.counter_add("detector.retries", 1);
        let seq = self.next_id;
        self.sched.insert(migration, seq, hint, not_before);
    }

    // ------------------------------------------------------------------
    // Algorithm 1 — finish-time targeting
    // ------------------------------------------------------------------

    /// Whether the detector admits `node` as an Algorithm 1 candidate.
    fn targetable(&self, node: NodeId) -> bool {
        self.detector.is_none()
            || matches!(
                self.det[node.index()].health,
                NodeHealth::Healthy | NodeHealth::Probation
            )
    }

    /// One pass of Algorithm 1: greedily set each pending block's target
    /// to the replica node where it is expected to finish earliest, given
    /// each node's estimated cost and already-queued backlog.
    ///
    /// Generalized from blocks to bytes: the paper's
    /// `finishTime[n] = migTime[n] × (numQueued[n]+1)` becomes
    /// `finish[n] = spb[n] × queued_bytes[n]` plus the candidate block's
    /// own `spb[n] × bytes` evaluated per candidate, which reduces to the
    /// paper's formula when all blocks are the same size.
    ///
    /// The heavy lifting lives in [`crate::sched`]: the default
    /// incremental engine rescoring only entries whose candidate set
    /// changed since the last pass, with the full-rescan reference engine
    /// selectable via [`crate::config::SchedulerConfig`]. Both produce
    /// bit-identical decisions; `bench/algo1_*` validates the §III-D
    /// scalability claim (50 GB of pending migrations retargeted in under
    /// a millisecond) for both.
    ///
    /// Returns how many pending entries the pass rescored vs skipped.
    pub fn retarget(&mut self) -> RetargetStats {
        if !self.policy.uses_targeting() {
            return RetargetStats::default();
        }
        self.stats.retarget_passes += 1;
        self.sched.retarget(&self.obs)
    }

    // ------------------------------------------------------------------
    // slave pull — delayed binding
    // ------------------------------------------------------------------

    /// A slave with `space` free local-queue slots asks for work.
    ///
    /// * `Dyrs`: only blocks *targeted* at this slave may bind — a slow
    ///   node gets nothing once faster nodes can cover the tail (§V-F3);
    /// * `Naive`: any pending block with a replica on this slave binds
    ///   (FIFO) — the straggler-prone baseline of Fig. 10;
    /// * other policies: nothing (no delayed binding).
    pub fn on_slave_pull(&mut self, node: NodeId, space: usize) -> Vec<Migration> {
        if !self.policy.delayed_binding() || space == 0 || !self.nodes[node.index()].up {
            return Vec::new();
        }
        // Detector gating: suspect and quarantined nodes get no work; a
        // probation node gets exactly one migration in flight.
        let mut allow = usize::MAX;
        let detector_on = self.detector.is_some();
        if detector_on {
            match self.det[node.index()].health {
                NodeHealth::Suspect | NodeHealth::Quarantined => return Vec::new(),
                NodeHealth::Probation => {
                    if self.det[node.index()].probation_block.is_some() {
                        return Vec::new();
                    }
                    allow = 1;
                }
                NodeHealth::Healthy => {}
            }
        }
        let targeted = self.policy.uses_targeting();
        let now = self.clock;
        // The per-node index pops exactly the eligible entries in
        // admission order — no scan over unrelated pending work, and no
        // popping past the `space.min(allow)` budget.
        let picked = self.sched.pull(node, targeted, now, space.min(allow));
        let mut taken = Vec::with_capacity(picked.len());
        for entry in picked {
            self.nodes[node.index()].queued_bytes += entry.migration.bytes as f64;
            self.stats.bound += 1;
            self.obs
                .migration_bound(entry.migration.id.0, node, cause::HEARTBEAT_PULL);
            if detector_on {
                if self.det[node.index()].health == NodeHealth::Probation {
                    self.det[node.index()].probation_block = Some(entry.migration.block);
                }
                self.bound_records.insert(
                    entry.migration.block,
                    BoundRecord {
                        node,
                        bound_at: now,
                        est_secs_at_bind: self.nodes[node.index()].spb
                            * entry.migration.bytes as f64,
                        hint: entry.hint,
                        migration: entry.migration.clone(),
                    },
                );
            }
            taken.push(entry.migration);
        }
        self.sync_node(node);
        taken
    }

    // ------------------------------------------------------------------
    // completion / reads / eviction
    // ------------------------------------------------------------------

    /// A slave finished migrating `block` into its memory.
    pub fn on_migration_complete(&mut self, node: NodeId, block: BlockId) {
        self.migrated.insert(block, node);
        self.stats.completed += 1;
        if self.detector.is_some() {
            if matches!(self.bound_records.get(&block), Some(rec) if rec.node == node) {
                self.bound_records.remove(&block);
            }
            let d = &mut self.det[node.index()];
            if d.health == NodeHealth::Probation && d.probation_block == Some(block) {
                // The probation migration finished: the circuit closes.
                d.health = NodeHealth::Healthy;
                d.probation_block = None;
                d.strikes.clear();
                self.obs.counter_add("detector.probations_passed", 1);
            }
        }
        self.sync_node(node);
    }

    /// A slave evicted `block` from its memory.
    pub fn on_evicted(&mut self, block: BlockId) {
        self.migrated.remove(&block);
    }

    /// A block was read before its migration was bound: cancel the pending
    /// migration (a *missed read* — migrating it now would be wasted work).
    /// Returns `true` if a pending migration was cancelled.
    pub fn on_block_read(&mut self, block: BlockId) -> bool {
        // One O(log n) index lookup replaces the old double scan (find for
        // the obs event, then retain to drop the entry).
        match self.sched.remove_block(block) {
            Some(entry) => {
                self.obs
                    .migration_aborted(entry.migration.id.0, None, cause::MISSED_READ);
                self.stats.missed_reads += 1;
                true
            }
            None => false,
        }
    }

    /// Explicit evict command for `job` (routed through the master,
    /// §III-C3). Removes the job from pending migrations (dropping entries
    /// nobody else wants) and returns the set of nodes that must drop the
    /// job's references.
    pub fn evict_job(&mut self, job: JobId) -> Vec<NodeId> {
        // Drop the job from pending migrations. `job_blocks` records every
        // block the job ever requested (every pending job-ref was added
        // alongside a `job_blocks` push), so this visits only the job's
        // own blocks instead of scanning the whole pending list.
        let blocks = self.job_blocks.remove(&job).unwrap_or_default();
        for &block in &blocks {
            if let Some(id) = self.sched.drop_job_ref(block, job) {
                self.obs.migration_aborted(id.0, None, cause::JOB_EVICTED);
            }
        }
        // Tell every slave buffering one of the job's blocks.
        let mut nodes: Vec<NodeId> = blocks
            .iter()
            .filter_map(|b| self.migrated.get(b).copied())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Master (process) failure + restart: all soft state is lost
    /// (§III-C1). Slaves keep their buffers and clean them up themselves;
    /// the only cost is that reads cannot be redirected to memory until
    /// state is repopulated.
    pub fn restart(&mut self) {
        for entry in self.sched.entries() {
            self.obs
                .migration_aborted(entry.migration.id.0, None, cause::MASTER_RESTART);
        }
        self.sched.reset(self.default_spb);
        self.migrated.clear();
        self.ignem_bindings.clear();
        self.job_blocks.clear();
        self.bound_records.clear();
        for s in &mut self.nodes {
            s.spb = self.default_spb;
            s.queued_bytes = 0.0;
        }
        // Detector state is soft too: everyone restarts healthy with an
        // unarmed deadline (no mass-suspect storm after the outage).
        for d in &mut self.det {
            *d = DetectorState::default();
        }
        // Nodes that were down stay down across a *master* restart; push
        // the post-reset load and candidacy view into the scheduler.
        self.sync_all_nodes();
    }
}

impl simkit::audit::Audit for Master {
    /// Master-side invariants:
    ///
    /// * every pending migration carries at least one interested job, a
    ///   positive size, and an in-range target (§III-A1's "bind once"
    ///   per-block uniqueness is structural now: the scheduler's block
    ///   index cannot hold two entries for one block, and
    ///   [`crate::sched`]'s own audit cross-checks every index);
    /// * the scheduler's per-node snapshot mirrors the master's live view
    ///   (exact when `spb_epsilon` is 0 — with a dampening epsilon the
    ///   snapshot is allowed to lag by design);
    /// * per-node state from heartbeats is sane: cost estimates finite and
    ///   positive (§IV-A), queued-byte views finite and non-negative;
    /// * buffering records point at nodes that are up (§III-C2: a dead
    ///   node's records are dropped with it).
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "master";
        for e in self.sched.entries() {
            let block = e.migration.block;
            report.check(
                !e.migration.jobs.is_empty(),
                c,
                "every pending migration has an interested job",
                || format!("{block} has no job references"),
            );
            report.check(
                e.migration.bytes > 0,
                c,
                "every pending migration moves at least one byte",
                || format!("{block} is zero-sized"),
            );
            if let Some(t) = e.target {
                report.check(
                    t.index() < self.nodes.len(),
                    c,
                    "targets index a known node",
                    || format!("{block} targets out-of-range {t}"),
                );
            }
        }
        if self.sched.config().spb_epsilon == 0.0 {
            for (i, s) in self.nodes.iter().enumerate() {
                let node = NodeId(i as u32);
                let (spb, queued, candidate) = self.sched.node_snapshot(i);
                report.check(
                    spb == s.spb && queued == s.queued_bytes,
                    c,
                    "scheduler load snapshot mirrors the master's live view",
                    || {
                        format!(
                            "node {i}: snapshot ({spb}, {queued}) vs live ({}, {})",
                            s.spb, s.queued_bytes
                        )
                    },
                );
                report.check(
                    candidate == (s.up && self.targetable(node)),
                    c,
                    "scheduler candidacy snapshot mirrors health gating",
                    || format!("node {i}: snapshot candidate = {candidate}"),
                );
            }
        }
        self.sched.audit(report);
        for (i, s) in self.nodes.iter().enumerate() {
            report.check(
                s.spb.is_finite() && s.spb > 0.0,
                c,
                "§IV-A: per-node cost estimates are finite and positive",
                || format!("node {i}: spb = {}", s.spb),
            );
            report.check(
                s.queued_bytes.is_finite() && s.queued_bytes >= 0.0,
                c,
                "per-node queued-byte views are finite and non-negative",
                || format!("node {i}: queued_bytes = {}", s.queued_bytes),
            );
        }
        for (&block, &node) in &self.migrated {
            report.check(
                node.index() < self.nodes.len() && self.nodes[node.index()].up,
                c,
                "§III-C2: buffering records point at live nodes",
                || format!("{block} recorded on {node}, which is not up"),
            );
        }
        for (&block, &node) in &self.ignem_bindings {
            report.check(
                node.index() < self.nodes.len(),
                c,
                "Ignem bindings index a known node",
                || format!("{block} bound to out-of-range {node}"),
            );
        }
        for (&block, rec) in &self.bound_records {
            report.check(
                rec.node.index() < self.nodes.len(),
                c,
                "bound records index a known node",
                || format!("{block} bound on out-of-range {}", rec.node),
            );
            report.check(
                rec.migration.block == block,
                c,
                "bound records are keyed by their migration's block",
                || format!("record for {block} holds {}", rec.migration.block),
            );
        }
        if self.detector.is_some() {
            for (i, d) in self.det.iter().enumerate() {
                report.check(
                    d.probation_block.is_none() || d.health == NodeHealth::Probation,
                    c,
                    "only probation nodes hold a probation migration",
                    || format!("node {i} is {:?} with a probation block", d.health),
                );
                report.check(
                    d.health != NodeHealth::Quarantined || d.quarantined_until > SimTime::ZERO,
                    c,
                    "quarantines always carry a lift deadline",
                    || format!("node {i} quarantined with no deadline"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn j(i: u64) -> JobId {
        JobId(i)
    }
    fn b(i: u64) -> BlockId {
        BlockId(i)
    }

    fn req(i: u64, replicas: &[u32]) -> BlockRequest {
        BlockRequest {
            block: b(i),
            bytes: 256 * MB,
            replicas: replicas.iter().map(|&x| n(x)).collect(),
        }
    }

    fn master(policy: MigrationPolicy) -> Master {
        Master::new(policy, 4, 140.0 * MB as f64, Rng::new(7))
    }

    #[test]
    fn dyrs_requests_enter_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        let out = m.request_migration(
            j(1),
            vec![req(1, &[0, 1, 2]), req(2, &[1, 2, 3])],
            EvictionMode::Implicit,
        );
        assert!(out.immediate.is_empty());
        assert_eq!(m.pending_len(), 2);
        assert_eq!(m.pending_bytes(), 512 * MB);
        assert_eq!(m.stats().requested_blocks, 2);
    }

    #[test]
    fn ignem_binds_immediately_to_a_replica() {
        let mut m = master(MigrationPolicy::Ignem);
        let out = m.request_migration(j(1), vec![req(1, &[0, 1, 2])], EvictionMode::Implicit);
        assert_eq!(out.immediate.len(), 1);
        let bound = &out.immediate[0];
        assert!(bound.migration.replicas.contains(&bound.node));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.stats().bound, 1);
    }

    #[test]
    fn ignem_spreads_uniformly_regardless_of_estimates() {
        let mut m = master(MigrationPolicy::Ignem);
        // node 0 is catastrophically slow — Ignem must not care
        m.on_heartbeat(n(0), 1.0, 0);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let out =
                m.request_migration(j(i), vec![req(i, &[0, 1, 2, 3])], EvictionMode::Implicit);
            counts[out.immediate[0].node.index()] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "Ignem skew: {counts:?}");
        }
    }

    #[test]
    fn disabled_policy_ignores_requests() {
        let mut m = master(MigrationPolicy::Disabled);
        let out = m.request_migration(j(1), vec![req(1, &[0])], EvictionMode::Explicit);
        assert!(out.immediate.is_empty() && out.add_refs.is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn duplicate_block_requests_merge_job_refs() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        assert_eq!(m.pending_len(), 1, "same block must not migrate twice");
        assert_eq!(m.stats().requested_blocks, 1);
    }

    #[test]
    fn request_for_buffered_block_yields_add_ref() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        let tgt = m.target_of(b(1)).unwrap();
        let taken = m.on_slave_pull(tgt, 4);
        assert_eq!(taken.len(), 1);
        m.on_migration_complete(tgt, b(1));
        let node = m.memory_location(b(1)).unwrap();
        let out = m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        assert_eq!(out.add_refs.len(), 1);
        assert_eq!(out.add_refs[0].0, node);
        assert_eq!(out.add_refs[0].2.job, j(2));
    }

    #[test]
    fn retarget_prefers_fast_nodes() {
        let mut m = master(MigrationPolicy::Dyrs);
        // node 0 is 100x slower per byte
        m.on_heartbeat(n(0), 100.0 / (140.0 * MB as f64), 0);
        m.on_heartbeat(n(1), 1.0 / (140.0 * MB as f64), 0);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[0, 1])],
            EvictionMode::Implicit,
        );
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(1)));
        assert_eq!(
            m.target_of(b(2)),
            Some(n(1)),
            "greedy still avoids the slow node"
        );
    }

    #[test]
    fn retarget_balances_equal_nodes() {
        let mut m = master(MigrationPolicy::Dyrs);
        let blocks: Vec<BlockRequest> = (0..10).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        let on0 = (0..10).filter(|&i| m.target_of(b(i)) == Some(n(0))).count();
        assert_eq!(on0, 5, "equal nodes split the batch evenly");
    }

    #[test]
    fn retarget_accounts_for_existing_queues() {
        let mut m = master(MigrationPolicy::Dyrs);
        let spb = 1.0 / (140.0 * MB as f64);
        m.on_heartbeat(n(0), spb, 10 * 256 * MB); // long backlog
        m.on_heartbeat(n(1), spb, 0);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(1)));
    }

    #[test]
    fn retarget_skips_down_replicas() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.set_node_up(n(1), false);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert_eq!(m.target_of(b(1)), Some(n(0)));
        m.set_node_up(n(0), false);
        m.retarget();
        assert_eq!(m.target_of(b(1)), None, "no live replica → no target");
    }

    #[test]
    fn dyrs_pull_honours_targets_and_space() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_heartbeat(n(0), 1.0 / (140.0 * MB as f64), 0);
        // node 1 never heartbeats but has the prior; make it slow instead:
        m.on_heartbeat(n(1), 1.0, 0);
        let blocks: Vec<BlockRequest> = (0..5).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        // everything targeted at fast node 0
        let slow_pull = m.on_slave_pull(n(1), 10);
        assert!(
            slow_pull.is_empty(),
            "slow node must not bind targeted work"
        );
        let fast_pull = m.on_slave_pull(n(0), 3);
        assert_eq!(fast_pull.len(), 3, "space limits the take");
        assert_eq!(m.pending_len(), 2);
        // FIFO order preserved
        assert_eq!(fast_pull[0].block, b(0));
        assert_eq!(fast_pull[1].block, b(1));
    }

    #[test]
    fn naive_pull_takes_any_replica_fifo() {
        let mut m = master(MigrationPolicy::Naive);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[2, 3]), req(3, &[0, 2])],
            EvictionMode::Implicit,
        );
        // no retarget needed for naive
        let pull = m.on_slave_pull(n(0), 10);
        let got: Vec<BlockId> = pull.iter().map(|p| p.block).collect();
        assert_eq!(got, vec![b(1), b(3)]);
        assert_eq!(m.pending_len(), 1);
    }

    #[test]
    fn pull_from_down_node_is_empty() {
        let mut m = master(MigrationPolicy::Naive);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.set_node_up(n(0), false);
        assert!(m.on_slave_pull(n(0), 10).is_empty());
    }

    #[test]
    fn missed_read_cancels_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        assert!(m.on_block_read(b(1)));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.stats().missed_reads, 1);
        assert!(!m.on_block_read(b(1)), "second read is not a cancel");
    }

    #[test]
    fn evict_job_routes_to_hosting_nodes_and_cleans_pending() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(
            j(1),
            vec![req(1, &[0, 1]), req(2, &[0, 1])],
            EvictionMode::Explicit,
        );
        m.retarget();
        // bind and complete block 1 on its target
        let tgt = m.target_of(b(1)).unwrap();
        let taken = m.on_slave_pull(tgt, 1);
        assert_eq!(taken[0].block, b(1));
        m.on_migration_complete(tgt, b(1));
        // block 2 still pending; eviction should drop it and point at tgt
        let nodes = m.evict_job(j(1));
        assert_eq!(nodes, vec![tgt]);
        assert_eq!(m.pending_len(), 0, "sole-job pending entries dropped");
    }

    #[test]
    fn evict_job_keeps_shared_pending_entries() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        m.request_migration(j(2), vec![req(1, &[0, 1])], EvictionMode::Explicit);
        m.evict_job(j(1));
        assert_eq!(m.pending_len(), 1, "job 2 still wants the block");
    }

    #[test]
    fn node_failure_drops_its_buffered_blocks() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_migration_complete(n(2), b(9));
        assert_eq!(m.memory_location(b(9)), Some(n(2)));
        m.set_node_up(n(2), false);
        assert_eq!(m.memory_location(b(9)), None);
    }

    #[test]
    fn restart_clears_soft_state() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.request_migration(j(1), vec![req(1, &[0, 1])], EvictionMode::Implicit);
        m.on_migration_complete(n(0), b(5));
        m.restart();
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.memory_location(b(5)), None);
        // and it keeps working after restart
        m.request_migration(j(2), vec![req(2, &[0, 1])], EvictionMode::Implicit);
        assert_eq!(m.pending_len(), 1);
    }

    #[test]
    fn zero_byte_and_replica_less_requests_skipped() {
        let mut m = master(MigrationPolicy::Dyrs);
        let out = m.request_migration(
            j(1),
            vec![
                BlockRequest {
                    block: b(1),
                    bytes: 0,
                    replicas: vec![n(0)],
                },
                BlockRequest {
                    block: b(2),
                    bytes: 10,
                    replicas: vec![],
                },
            ],
            EvictionMode::Implicit,
        );
        assert!(out.immediate.is_empty() && out.add_refs.is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn sjf_order_puts_small_jobs_first() {
        let mut m = master(MigrationPolicy::Naive);
        m.set_order(crate::MigrationOrder::SmallestJobFirst);
        let hint = |bytes| JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: bytes,
        };
        m.request_migration_hinted(
            j(1),
            vec![req(1, &[0]), req(2, &[0])],
            EvictionMode::Implicit,
            hint(2 * 256 * MB),
        );
        m.request_migration_hinted(
            j(2),
            vec![req(3, &[0])],
            EvictionMode::Implicit,
            hint(256 * MB),
        );
        // job 2 is smaller → its block jumps the queue
        let pulled = m.on_slave_pull(n(0), 10);
        let order: Vec<BlockId> = pulled.iter().map(|p| p.block).collect();
        assert_eq!(order, vec![b(3), b(1), b(2)]);
    }

    #[test]
    fn edf_order_puts_imminent_jobs_first() {
        let mut m = master(MigrationPolicy::Naive);
        m.set_order(crate::MigrationOrder::EarliestDeadlineFirst);
        let hint = |secs| JobHint {
            expected_launch: simkit::SimTime::from_secs(secs),
            total_bytes: 0,
        };
        m.request_migration_hinted(j(1), vec![req(1, &[0])], EvictionMode::Implicit, hint(30));
        m.request_migration_hinted(j(2), vec![req(2, &[0])], EvictionMode::Implicit, hint(10));
        m.request_migration_hinted(j(3), vec![req(3, &[0])], EvictionMode::Implicit, hint(20));
        let pulled = m.on_slave_pull(n(0), 10);
        let order: Vec<BlockId> = pulled.iter().map(|p| p.block).collect();
        assert_eq!(order, vec![b(2), b(3), b(1)]);
    }

    #[test]
    fn fifo_order_is_arrival_order() {
        let mut m = master(MigrationPolicy::Naive);
        assert_eq!(m.order(), crate::MigrationOrder::Fifo);
        let hint = |bytes| JobHint {
            expected_launch: simkit::SimTime::ZERO,
            total_bytes: bytes,
        };
        // larger job arrives first and stays first under FIFO
        m.request_migration_hinted(j(1), vec![req(1, &[0])], EvictionMode::Implicit, hint(999));
        m.request_migration_hinted(j(2), vec![req(2, &[0])], EvictionMode::Implicit, hint(1));
        let pulled = m.on_slave_pull(n(0), 10);
        assert_eq!(pulled[0].block, b(1));
    }

    #[test]
    fn restart_then_reheartbeat_resumes_targeting() {
        let mut m = master(MigrationPolicy::Dyrs);
        m.on_heartbeat(n(0), 1.0, 0); // slow before restart
        m.restart();
        // post-restart the stale slow estimate is gone (back to priors):
        // targeting works immediately and no node is unfairly avoided
        m.request_migration(j(5), vec![req(9, &[0, 1])], EvictionMode::Implicit);
        m.retarget();
        assert!(m.target_of(b(9)).is_some());
        // fresh heartbeats take effect as usual
        m.on_heartbeat(n(0), 1.0, 0); // slow again
        m.retarget();
        assert_eq!(m.target_of(b(9)), Some(n(1)));
    }

    #[test]
    fn evict_unknown_job_is_noop() {
        let mut m = master(MigrationPolicy::Dyrs);
        assert!(m.evict_job(j(42)).is_empty());
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn ignem_read_target_tracks_liveness() {
        let mut m = master(MigrationPolicy::Ignem);
        let out = m.request_migration(j(1), vec![req(1, &[2])], EvictionMode::Implicit);
        let node = out.immediate[0].node;
        assert_eq!(m.ignem_read_target(b(1)), Some(node));
        m.set_node_up(node, false);
        assert_eq!(m.ignem_read_target(b(1)), None, "down node is no target");
        m.set_node_up(node, true);
        assert_eq!(m.ignem_read_target(b(1)), Some(node));
    }

    #[test]
    fn naive_pull_ignores_targets_entirely() {
        let mut m = master(MigrationPolicy::Naive);
        m.on_heartbeat(n(0), 1.0, 0); // catastrophically slow
        m.request_migration(j(1), vec![req(1, &[0])], EvictionMode::Implicit);
        // naive binds to any replica holder with space — even the slow one
        assert_eq!(m.on_slave_pull(n(0), 1).len(), 1);
    }

    #[test]
    fn straggler_avoidance_shape() {
        // End-of-batch behaviour (§V-F3): with a slow and a fast node and a
        // short tail of work, everything targets the fast node.
        let mut m = master(MigrationPolicy::Dyrs);
        let fast = 1.0 / (140.0 * MB as f64);
        m.on_heartbeat(n(0), fast * 20.0, 0); // slow node
        m.on_heartbeat(n(1), fast, 0);
        let blocks: Vec<BlockRequest> = (0..3).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(1), blocks, EvictionMode::Implicit);
        m.retarget();
        for i in 0..3 {
            assert_eq!(
                m.target_of(b(i)),
                Some(n(1)),
                "tail block {i} must avoid the slow node"
            );
        }
        // but with a long batch the slow node eventually gets some work
        let blocks: Vec<BlockRequest> = (10..80).map(|i| req(i, &[0, 1])).collect();
        m.request_migration(j(2), blocks, EvictionMode::Implicit);
        m.retarget();
        let slow_count = (10..80)
            .filter(|&i| m.target_of(b(i)) == Some(n(0)))
            .count();
        assert!(
            slow_count > 0,
            "a long batch should use residual slow-node bandwidth"
        );
        assert!(slow_count < 35, "but far less than half");
    }

    // ------------------------------------------------------------------
    // gray-failure detector
    // ------------------------------------------------------------------

    use crate::config::FailureDetectorConfig;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn detector_master() -> Master {
        let mut m = master(MigrationPolicy::Dyrs);
        m.configure_detector(FailureDetectorConfig::default());
        for i in 0..4 {
            m.on_heartbeat_at(n(i), 1.0 / (140.0 * MB as f64), 0, t(0));
        }
        m
    }

    /// Bind one block (replicated on `reps`) and return its bound node.
    fn bind_one(m: &mut Master, block: u64, reps: &[u32]) -> NodeId {
        m.request_migration(j(block), vec![req(block, reps)], EvictionMode::Implicit);
        m.retarget();
        let tgt = m.target_of(b(block)).expect("live replica");
        let taken = m.on_slave_pull(tgt, 4);
        assert!(taken.iter().any(|mig| mig.block == b(block)));
        tgt
    }

    #[test]
    fn detector_off_for_non_delayed_binding_policies() {
        for policy in [MigrationPolicy::Ignem, MigrationPolicy::Disabled] {
            let mut m = master(policy);
            m.configure_detector(FailureDetectorConfig::default());
            assert!(!m.detector_enabled(), "{policy:?} holds no bindings");
        }
        let mut m = master(MigrationPolicy::Naive);
        m.configure_detector(FailureDetectorConfig::default());
        assert!(m.detector_enabled());
        m.configure_detector(FailureDetectorConfig {
            enabled: false,
            ..FailureDetectorConfig::default()
        });
        assert!(!m.detector_enabled());
    }

    #[test]
    fn missed_heartbeats_suspect_the_node_and_unbind_rebinds_elsewhere() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        // everyone else heartbeats on; the bound node goes dark
        for i in 0..4 {
            if n(i) != tgt {
                m.on_heartbeat_at(n(i), 1.0 / (140.0 * MB as f64), 0, t(4));
            }
        }
        let report = m.check_health(t(4));
        assert_eq!(report.newly_suspect, vec![tgt]);
        assert_eq!(m.node_health(tgt), NodeHealth::Suspect);
        // the caller confirms the revocation; a successor re-pends
        m.on_unbound(tgt, b(1), cause::NODE_SUSPECT);
        assert_eq!(m.pending_len(), 1);
        // suspect nodes are not candidates; the survivor is
        m.retarget();
        let new_target = m.target_of(b(1)).expect("survivor replica");
        assert_ne!(new_target, tgt);
        // backoff: the successor may not bind before clock + retry_backoff
        assert!(m.on_slave_pull(new_target, 4).is_empty(), "backoff gates");
        m.on_heartbeat_at(new_target, 1.0 / (140.0 * MB as f64), 0, t(6));
        let taken = m.on_slave_pull(new_target, 4);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].block, b(1));
        assert_eq!(taken[0].attempt, 1, "successor carries the retry count");
    }

    #[test]
    fn heartbeat_clears_suspicion() {
        let mut m = detector_master();
        m.check_health(t(4));
        assert_eq!(m.node_health(n(0)), NodeHealth::Suspect);
        m.on_heartbeat_at(n(0), 1.0, 0, t(5));
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
    }

    #[test]
    fn strikes_quarantine_then_probation_then_healthy() {
        let mut m = detector_master();
        // three stuck-stream strikes inside the window → quarantine
        for i in 0..3 {
            let tgt = bind_one(&mut m, i, &[0]);
            assert_eq!(tgt, n(0));
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        assert!(
            m.on_slave_pull(n(0), 8).is_empty(),
            "quarantined binds nothing"
        );
        // quarantined node is not a candidate even as sole replica: the
        // successors stay pending rather than being dropped
        m.retarget();
        assert!(m.pending_len() > 0);
        for blk in m.pending_block_ids().collect::<Vec<_>>() {
            assert_eq!(m.target_of(blk), None, "{blk} targeted a quarantined node");
        }
        // backoff elapses → probation admits exactly one migration
        m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(11));
        m.check_health(t(11));
        assert_eq!(m.node_health(n(0)), NodeHealth::Probation);
        m.retarget();
        let taken = m.on_slave_pull(n(0), 8);
        assert_eq!(taken.len(), 1, "probation allows one in-flight migration");
        assert!(m.on_slave_pull(n(0), 8).is_empty(), "second pull gated");
        // completing the probation migration closes the circuit
        m.on_migration_complete(n(0), taken[0].block);
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
        m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(13));
        assert!(!m.on_slave_pull(n(0), 8).is_empty(), "healthy again");
    }

    #[test]
    fn quarantine_auto_dumps_the_flight_recorder_naming_the_node() {
        let obs = ObsHandle::new();
        let mut m = detector_master();
        m.attach_obs(obs.clone());
        // Three stuck-stream strikes inside the window force a quarantine
        // — the crash the flight recorder exists to explain.
        for i in 0..3 {
            let tgt = bind_one(&mut m, i, &[0]);
            assert_eq!(tgt, n(0));
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        let dumps = obs.auto_flight_dumps();
        if !obs.is_enabled() {
            assert!(dumps.is_empty(), "no-op handles never dump");
            return;
        }
        assert_eq!(dumps.len(), 1, "exactly one quarantine, one dump");
        let d = &dumps[0];
        assert_eq!(d.reason, "node-quarantined");
        assert_eq!(d.node, Some(0), "the dump names the quarantined node");
        // The ring holds the span history that led here: the striking
        // aborts on node 0, then the marker entry stamped at dump time.
        assert!(
            d.entries
                .iter()
                .any(|e| e.node == Some(0) && e.cause == cause::STUCK_STREAM),
            "recent transitions explain the strikes: {:?}",
            d.entries
        );
        let marker = d.entries.last().expect("ring is not empty");
        assert_eq!(marker.cause, "node-quarantined");
        assert_eq!(
            d.entries_for(0).count(),
            d.entries.iter().filter(|e| e.node == Some(0)).count(),
            "per-node filter matches a manual scan"
        );
    }

    #[test]
    fn bounded_retry_gives_up_after_max_attempts() {
        let mut m = detector_master();
        m.configure_detector(FailureDetectorConfig {
            max_attempts: 3,
            quarantine_strikes: 100, // isolate the retry budget
            ..FailureDetectorConfig::default()
        });
        bind_one(&mut m, 1, &[0]);
        let mut clock = 0;
        for attempt in 1..3u32 {
            m.on_unbound(n(0), b(1), cause::STUCK_STREAM);
            assert_eq!(m.pending_len(), 1, "attempt {attempt} re-pends");
            // advance past the backoff and re-bind
            clock += 10;
            m.on_heartbeat_at(n(0), 1.0 / (140.0 * MB as f64), 0, t(clock));
            m.retarget();
            let taken = m.on_slave_pull(n(0), 4);
            assert_eq!(taken.len(), 1);
            assert_eq!(taken[0].attempt, attempt);
        }
        // third unbind exhausts the budget: no successor
        m.on_unbound(n(0), b(1), cause::STUCK_STREAM);
        assert_eq!(m.pending_len(), 0, "retries exhausted → chain ends");
    }

    #[test]
    fn node_down_repends_bound_work_without_a_strike() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.set_node_up(tgt, false);
        assert_eq!(m.pending_len(), 1, "fail-stop re-pends the binding");
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy, "crash ≠ strike");
        m.retarget();
        let new_target = m.target_of(b(1)).expect("survivor");
        assert_ne!(new_target, tgt);
    }

    #[test]
    fn stuck_streams_are_reported_after_the_deadline() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        // keep the node heartbeating (not suspect), but the migration
        // never completes: past the floor deadline it is flagged
        m.on_heartbeat_at(tgt, 1.0 / (140.0 * MB as f64), 256 * MB, t(20));
        assert!(m.check_health(t(20)).stuck.is_empty(), "deadline not yet");
        m.on_heartbeat_at(tgt, 1.0 / (140.0 * MB as f64), 256 * MB, t(21));
        let report = m.check_health(t(21));
        assert_eq!(report.stuck, vec![(tgt, b(1))]);
    }

    #[test]
    fn discard_bound_forgets_without_strike_or_successor() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.discard_bound(b(1));
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy);
        assert!(m.check_health(t(30)).stuck.is_empty(), "record is gone");
    }

    #[test]
    fn stale_unbound_is_ignored() {
        let mut m = detector_master();
        let tgt = bind_one(&mut m, 1, &[0, 1]);
        m.on_migration_complete(tgt, b(1));
        // a stale revocation after completion must not strike or re-pend
        m.on_unbound(tgt, b(1), cause::STUCK_STREAM);
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.node_health(tgt), NodeHealth::Healthy);
    }

    #[test]
    fn master_restart_resets_detector_state() {
        let mut m = detector_master();
        for i in 0..3 {
            bind_one(&mut m, i, &[0]);
            m.on_unbound(n(0), b(i), cause::STUCK_STREAM);
        }
        assert_eq!(m.node_health(n(0)), NodeHealth::Quarantined);
        m.restart();
        assert_eq!(m.node_health(n(0)), NodeHealth::Healthy);
        // no mass-suspect storm: deadlines re-arm at the first check
        let report = m.check_health(t(100));
        assert!(report.newly_suspect.is_empty());
    }
}
