//! Per-slave migration-time estimation (paper §IV-A).
//!
//! Each slave estimates how long migrating a block will take on its disk
//! using an EWMA of past migration durations, normalized to
//! seconds-per-byte so that blocks of different sizes share one estimate.
//!
//! The paper adds a crucial refinement: "when the elapsed duration of an
//! active migration becomes greater than its estimate, we update the
//! estimate periodically (every heartbeat) until migration completes."
//! Without it, a sudden bandwidth drop would go unnoticed until the
//! (now very slow) migration finally finishes. [`MigrationEstimator::refresh_in_progress`]
//! implements that early, monotone update.

use serde::{Deserialize, Serialize};
use simkit::stats::Ewma;
use simkit::SimDuration;

/// EWMA estimator of migration cost, in seconds per byte.
///
/// ```
/// use dyrs::MigrationEstimator;
/// use simkit::SimDuration;
///
/// const MB: u64 = 1 << 20;
/// let mut est = MigrationEstimator::new(100.0 * MB as f64, 0.5);
/// // before any sample the prior is the idle-disk rate: 1 s per 100 MB
/// assert!((est.estimate(100 * MB).as_secs_f64() - 1.0).abs() < 1e-6);
///
/// // a slow migration pushes the estimate up …
/// est.on_complete(100 * MB, SimDuration::from_secs(3));
/// assert!(est.estimate(100 * MB).as_secs_f64() > 2.9);
///
/// // … and an overdue in-progress migration raises it immediately,
/// // without waiting for completion (§IV-A)
/// assert!(est.refresh_in_progress(100 * MB, SimDuration::from_secs(10)));
/// assert!(est.estimate(100 * MB).as_secs_f64() > 6.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MigrationEstimator {
    ewma: Ewma,
    /// Prior used before any migration completes: the disk's idle
    /// sequential rate (optimistic, like a freshly started slave).
    default_secs_per_byte: f64,
}

impl MigrationEstimator {
    /// An estimator for a slave whose idle disk reads at `disk_bw`
    /// bytes/sec, blending new samples with weight `alpha`.
    pub fn new(disk_bw: f64, alpha: f64) -> Self {
        assert!(disk_bw > 0.0, "disk bandwidth must be positive");
        MigrationEstimator {
            ewma: Ewma::new(alpha),
            default_secs_per_byte: 1.0 / disk_bw,
        }
    }

    /// Current cost estimate in seconds per byte.
    pub fn secs_per_byte(&self) -> f64 {
        self.ewma.get_or(self.default_secs_per_byte)
    }

    /// Estimated migration time for a block of `bytes`.
    pub fn estimate(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.secs_per_byte() * bytes as f64)
    }

    /// Fold in a completed migration of `bytes` that took `duration`.
    /// Zero-byte migrations carry no signal and are ignored.
    pub fn on_complete(&mut self, bytes: u64, duration: SimDuration) {
        if bytes == 0 {
            return;
        }
        self.ewma.observe(duration.as_secs_f64() / bytes as f64);
    }

    /// Heartbeat-time refresh for an in-progress migration of `bytes`
    /// that has been running for `elapsed`: since elapsed time is a lower
    /// bound on the eventual duration, push the estimate up if the lower
    /// bound already exceeds it (never down). Returns `true` if the
    /// estimate changed.
    pub fn refresh_in_progress(&mut self, bytes: u64, elapsed: SimDuration) -> bool {
        if bytes == 0 {
            return false;
        }
        let lower_bound = elapsed.as_secs_f64() / bytes as f64;
        if lower_bound > self.secs_per_byte() {
            self.ewma.observe_lower_bound(lower_bound);
            true
        } else {
            false
        }
    }

    /// Forget all history (slave restart).
    pub fn reset(&mut self) {
        self.ewma.reset();
    }

    /// True if no migration has ever been observed.
    pub fn is_cold(&self) -> bool {
        self.ewma.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn est() -> MigrationEstimator {
        // 100 MB/s disk, alpha 0.5 for easy arithmetic
        MigrationEstimator::new(100.0 * MB as f64, 0.5)
    }

    #[test]
    fn cold_estimator_uses_disk_speed() {
        let e = est();
        assert!(e.is_cold());
        let t = e.estimate(100 * MB);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn completions_move_the_estimate() {
        let mut e = est();
        // first sample: 2 s for 100 MB → 2x slower than prior
        e.on_complete(100 * MB, SimDuration::from_secs(2));
        assert!((e.estimate(100 * MB).as_secs_f64() - 2.0).abs() < 1e-6);
        // second sample: 4 s → blended to 3 s with alpha 0.5
        e.on_complete(100 * MB, SimDuration::from_secs(4));
        assert!((e.estimate(100 * MB).as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_scales_with_block_size() {
        let mut e = est();
        e.on_complete(100 * MB, SimDuration::from_secs(2));
        let half = e.estimate(50 * MB);
        assert!((half.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn refresh_raises_but_never_lowers() {
        let mut e = est();
        e.on_complete(100 * MB, SimDuration::from_secs(2));
        // elapsed 1 s on a 100 MB block: lower bound 1 s < estimate 2 s → no-op
        assert!(!e.refresh_in_progress(100 * MB, SimDuration::from_secs(1)));
        assert!((e.estimate(100 * MB).as_secs_f64() - 2.0).abs() < 1e-6);
        // elapsed 10 s: lower bound far above → estimate rises
        assert!(e.refresh_in_progress(100 * MB, SimDuration::from_secs(10)));
        let after = e.estimate(100 * MB).as_secs_f64();
        assert!(after > 2.0 && after <= 10.0, "estimate {after}");
    }

    #[test]
    fn repeated_refresh_converges_upward_monotonically() {
        let mut e = est();
        e.on_complete(100 * MB, SimDuration::from_secs(2));
        let mut last = e.secs_per_byte();
        for s in 3..20 {
            e.refresh_in_progress(100 * MB, SimDuration::from_secs(s));
            let now = e.secs_per_byte();
            assert!(now >= last, "estimate must not decrease during refresh");
            last = now;
        }
    }

    #[test]
    fn zero_byte_samples_ignored() {
        let mut e = est();
        e.on_complete(0, SimDuration::from_secs(100));
        assert!(e.is_cold());
        assert!(!e.refresh_in_progress(0, SimDuration::from_secs(100)));
    }

    #[test]
    fn reset_returns_to_prior() {
        let mut e = est();
        e.on_complete(100 * MB, SimDuration::from_secs(50));
        e.reset();
        assert!(e.is_cold());
        assert!((e.estimate(100 * MB).as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_after_interference_ends() {
        // Estimate climbs during interference, then falls back once fast
        // migrations resume — the adaptation shown in Fig. 9b/9c.
        let mut e = est();
        for _ in 0..5 {
            e.on_complete(100 * MB, SimDuration::from_secs(8)); // slow period
        }
        let slow = e.estimate(100 * MB).as_secs_f64();
        assert!(slow > 6.0);
        for _ in 0..10 {
            e.on_complete(100 * MB, SimDuration::from_secs(1)); // fast period
        }
        let fast = e.estimate(100 * MB).as_secs_f64();
        assert!(fast < 1.5, "estimate should recover, got {fast}");
    }
}
