//! DYRS configuration knobs.

use crate::policy::MigrationOrder;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Tunables for the DYRS master and slaves. Defaults follow the paper's
/// description and HDFS conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DyrsConfig {
    /// Slave → master heartbeat interval (HDFS DataNode default: 3 s; the
    /// paper's adaptation experiments respond on the order of seconds, so
    /// we default to 1 s like busy production deployments).
    pub heartbeat_interval: SimDuration,
    /// Period of the master's background retargeting pass (Algorithm 1).
    /// "This algorithm is run regularly in a separate thread that is off
    /// the critical path" (§III-A2).
    pub retarget_interval: SimDuration,
    /// EWMA weight of the newest migration-duration sample (§IV-A).
    pub ewma_alpha: f64,
    /// Extra queue slots beyond the idleness-avoidance minimum. The ideal
    /// queue is "deep enough to avoid idleness, and yet as shallow as
    /// possible" (§III-A1); the minimum is heartbeat ÷ best-case block
    /// migration time, plus this slack.
    pub queue_slack: usize,
    /// Fraction of the memory hard limit at which a slave scavenges
    /// references of inactive jobs (§III-C3).
    pub scavenge_threshold: f64,
    /// Pending-list discipline at the master (paper: FIFO; SJF and EDF
    /// are the future-work alternatives, see
    /// [`MigrationOrder`]).
    #[serde(default)]
    pub migration_order: MigrationOrder,
    /// Maximum concurrent migrations per slave disk. The paper
    /// "serializes migrations and moves one block at a time into memory
    /// in order to limit disk read concurrency" (§III-B); values > 1
    /// exist for the ablation study quantifying that choice.
    #[serde(default = "default_max_concurrent")]
    pub max_concurrent_migrations: usize,
    /// Enable the §IV-A in-progress estimate refresh (update the estimate
    /// every heartbeat once an active migration runs past it). The paper
    /// added this after observing slow adaptation to sudden bandwidth
    /// drops; setting it to `false` reproduces their earlier prototype
    /// for the ablation study.
    #[serde(default = "default_true")]
    pub in_progress_refresh: bool,
    /// Gray-failure detector: heartbeat deadlines, bounded retry, and
    /// per-node quarantine.
    #[serde(default)]
    pub failure_detector: FailureDetectorConfig,
    /// Pending-migration scheduler: which Algorithm 1 engine runs and how
    /// eagerly estimate drift dirties nodes.
    #[serde(default)]
    pub scheduler: SchedulerConfig,
    /// Up/down-tier decision policy on multi-tier buffer stacks: Baseline
    /// reproduces the paper's memory-only reference-list protocol (with
    /// demote-on-pressure retention), Hotness additionally promotes
    /// middle-tier hits back into memory. Ignored on 2-tier stacks.
    #[serde(default)]
    pub tier_policy: dyrs_tiers::TierPolicyKind,
}

/// Which Algorithm 1 implementation the master's scheduler runs. All
/// three are decision-identical (asserted by the `sched_equivalence`
/// proptests); the reference pass exists for differential testing and as
/// the executable form of the paper's pseudocode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedEngine {
    /// Dirty-set incremental pass: only entries whose candidate set or
    /// node trajectories changed since the last pass are rescored.
    #[default]
    Incremental,
    /// The paper's full rescan: every pending entry rescored every pass.
    Reference,
    /// The shard-local incremental pass: per-shard sorted visit lists
    /// walked through a K-way merge, allocation-free rescoring, and the
    /// optional cascade cost ceiling (`cascade_ceiling`). Decisions are
    /// bit-identical to `Incremental` at every shard count.
    Sharded,
}

/// Scheduler engine selection and dirty-set thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Which retarget engine runs.
    #[serde(default)]
    pub engine: SchedEngine,
    /// Relative threshold below which a node's seconds-per-byte drift is
    /// ignored by the scoring snapshot (the node is not dirtied and keeps
    /// its old estimate). `0.0` — the default — mirrors every heartbeat
    /// exactly, keeping decisions identical to the paper's master;
    /// positive values trade estimate freshness for fewer rescores under
    /// EWMA jitter. Queued-bytes and candidacy changes always apply.
    #[serde(default)]
    pub spb_epsilon: f64,
    /// Number of range shards the pending store partitions into. `1`
    /// (the default) reproduces the monolithic layout exactly; larger
    /// counts spread `by_block`/`replica_idx`/bind-queue state over
    /// shards keyed by block-id range. Drain order is unchanged at any
    /// value (cross-shard K-way merge over the `OrderKey` total order).
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Cascade cost ceiling for the `Sharded` engine: when a pass's
    /// visit set in any one shard exceeds this fraction of the shard's
    /// queue, the pass abandons incremental accounting and finishes with
    /// the reference walk (identical decisions by construction; the
    /// switch is recorded via the `sched.cascade_ceiling` counter).
    /// `0.0` — the default — disables the ceiling.
    #[serde(default)]
    pub cascade_ceiling: f64,
}

fn default_shards() -> usize {
    1
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            engine: SchedEngine::default(),
            spb_epsilon: 0.0,
            shards: default_shards(),
            cascade_ceiling: 0.0,
        }
    }
}

/// Master-side gray-failure detector knobs.
///
/// The paper's protocol assumes nodes either heartbeat or are dead; this
/// layer covers the space in between — a node whose heartbeats stall, or
/// whose bound migrations crawl, without the node ever failing outright.
/// Disabling it (`enabled: false`) restores the paper's exact behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDetectorConfig {
    /// Master-side detector on/off switch.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// A node missing heartbeats for this long becomes *suspect*: its
    /// bound-but-unstarted migrations are unbound back to pending and it
    /// leaves Algorithm 1 candidacy until it heartbeats again. Must exceed
    /// the heartbeat interval with slack for ordinary jitter.
    #[serde(default = "default_suspect_after")]
    pub suspect_after: SimDuration,
    /// A bound migration not finished within this many multiples of the
    /// node's own estimate (`spb · bytes`, floored by `stuck_floor`) is
    /// declared stuck and re-bound elsewhere.
    #[serde(default = "default_stuck_multiple")]
    pub stuck_multiple: f64,
    /// Lower bound on the stuck deadline, so cheap blocks on fast disks
    /// are not declared stuck over scheduling noise.
    #[serde(default = "default_stuck_floor")]
    pub stuck_floor: SimDuration,
    /// Total binding attempts per block before the master gives up with a
    /// terminal `retries-exhausted` abort.
    #[serde(default = "default_max_attempts")]
    pub max_attempts: u32,
    /// Base of the deterministic exponential backoff between attempts:
    /// attempt k re-enters candidacy after `retry_backoff · 2^(k−1)`.
    #[serde(default = "default_retry_backoff")]
    pub retry_backoff: SimDuration,
    /// Strikes (suspect transitions or stuck migrations) within
    /// `strike_window` that quarantine a node.
    #[serde(default = "default_quarantine_strikes")]
    pub quarantine_strikes: u32,
    /// Sliding window over which strikes are counted.
    #[serde(default = "default_strike_window")]
    pub strike_window: SimDuration,
    /// How long a quarantined node is barred from candidacy before it may
    /// run a probation migration.
    #[serde(default = "default_quarantine_backoff")]
    pub quarantine_backoff: SimDuration,
    /// Admission ramp for a `Joining` node: how many migrations it must
    /// complete before it graduates to full `Healthy` candidacy. While
    /// joining, a pull may bind at most `1 + completed` migrations, so a
    /// cold node warms its estimator before absorbing a full queue.
    #[serde(default = "default_join_ramp_target")]
    pub join_ramp_target: u32,
}

fn default_suspect_after() -> SimDuration {
    SimDuration::from_secs(3)
}

fn default_stuck_multiple() -> f64 {
    8.0
}

fn default_stuck_floor() -> SimDuration {
    SimDuration::from_secs(20)
}

fn default_max_attempts() -> u32 {
    4
}

fn default_retry_backoff() -> SimDuration {
    SimDuration::from_secs(1)
}

fn default_quarantine_strikes() -> u32 {
    3
}

fn default_strike_window() -> SimDuration {
    SimDuration::from_secs(30)
}

fn default_quarantine_backoff() -> SimDuration {
    SimDuration::from_secs(10)
}

fn default_join_ramp_target() -> u32 {
    4
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            enabled: true,
            suspect_after: default_suspect_after(),
            stuck_multiple: default_stuck_multiple(),
            stuck_floor: default_stuck_floor(),
            max_attempts: default_max_attempts(),
            retry_backoff: default_retry_backoff(),
            quarantine_strikes: default_quarantine_strikes(),
            strike_window: default_strike_window(),
            quarantine_backoff: default_quarantine_backoff(),
            join_ramp_target: default_join_ramp_target(),
        }
    }
}

fn default_max_concurrent() -> usize {
    1
}

fn default_true() -> bool {
    true
}

impl Default for DyrsConfig {
    fn default() -> Self {
        DyrsConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            retarget_interval: SimDuration::from_millis(500),
            ewma_alpha: 0.5,
            queue_slack: 1,
            scavenge_threshold: 0.8,
            migration_order: MigrationOrder::Fifo,
            max_concurrent_migrations: default_max_concurrent(),
            in_progress_refresh: default_true(),
            failure_detector: FailureDetectorConfig::default(),
            scheduler: SchedulerConfig::default(),
            tier_policy: dyrs_tiers::TierPolicyKind::default(),
        }
    }
}

impl DyrsConfig {
    /// The ideal local queue depth for a slave whose disk reads a block of
    /// `block_bytes` at `disk_bw` bytes/sec when idle: the queue "should
    /// not totally drain in the interval it takes to fetch more work"
    /// (§III-B), i.e. ⌈heartbeat ÷ best-case block time⌉ + slack.
    pub fn queue_depth(&self, block_bytes: u64, disk_bw: f64) -> usize {
        if block_bytes == 0 {
            return 1 + self.queue_slack;
        }
        let block_secs = block_bytes as f64 / disk_bw;
        let hb = self.heartbeat_interval.as_secs_f64();
        ((hb / block_secs).ceil() as usize).max(1) + self.queue_slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DyrsConfig::default();
        assert!(c.ewma_alpha > 0.0 && c.ewma_alpha <= 1.0);
        assert!(c.retarget_interval <= c.heartbeat_interval);
        assert!(c.scavenge_threshold > 0.0 && c.scavenge_threshold <= 1.0);
    }

    #[test]
    fn queue_depth_covers_heartbeat() {
        let c = DyrsConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            queue_slack: 1,
            ..DyrsConfig::default()
        };
        // 256 MB at 140 MB/s ≈ 1.83s per block → 1 block per heartbeat + slack
        let d = c.queue_depth(256 << 20, 140.0 * (1 << 20) as f64);
        assert_eq!(d, 2);
        // tiny blocks → deep queue
        let d = c.queue_depth(1 << 20, 140.0 * (1 << 20) as f64);
        assert_eq!(d, 141);
    }

    #[test]
    fn queue_depth_zero_block_is_minimal() {
        let c = DyrsConfig::default();
        assert_eq!(c.queue_depth(0, 1e8), 1 + c.queue_slack);
    }

    #[test]
    fn scheduler_defaults_are_exact_incremental() {
        let s = DyrsConfig::default().scheduler;
        assert_eq!(s.engine, SchedEngine::Incremental);
        assert_eq!(s.spb_epsilon, 0.0, "default snapshot is an exact mirror");
        assert_eq!(s.shards, 1, "default layout is monolithic");
        assert_eq!(s.cascade_ceiling, 0.0, "ceiling is off by default");
    }

    #[test]
    fn detector_defaults_are_sane() {
        let c = DyrsConfig::default();
        let d = &c.failure_detector;
        assert!(d.enabled);
        assert!(d.suspect_after > c.heartbeat_interval);
        assert!(d.stuck_multiple > 1.0);
        assert!(d.max_attempts >= 2);
        assert!(d.quarantine_strikes >= 2);
        assert!(d.strike_window > d.suspect_after);
    }

    #[test]
    fn disabling_detector_keeps_other_defaults() {
        let d = FailureDetectorConfig {
            enabled: false,
            ..FailureDetectorConfig::default()
        };
        assert!(!d.enabled);
        assert_eq!(
            d.max_attempts,
            FailureDetectorConfig::default().max_attempts
        );
    }
}
