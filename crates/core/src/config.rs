//! DYRS configuration knobs.

use crate::policy::MigrationOrder;
use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Tunables for the DYRS master and slaves. Defaults follow the paper's
/// description and HDFS conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DyrsConfig {
    /// Slave → master heartbeat interval (HDFS DataNode default: 3 s; the
    /// paper's adaptation experiments respond on the order of seconds, so
    /// we default to 1 s like busy production deployments).
    pub heartbeat_interval: SimDuration,
    /// Period of the master's background retargeting pass (Algorithm 1).
    /// "This algorithm is run regularly in a separate thread that is off
    /// the critical path" (§III-A2).
    pub retarget_interval: SimDuration,
    /// EWMA weight of the newest migration-duration sample (§IV-A).
    pub ewma_alpha: f64,
    /// Extra queue slots beyond the idleness-avoidance minimum. The ideal
    /// queue is "deep enough to avoid idleness, and yet as shallow as
    /// possible" (§III-A1); the minimum is heartbeat ÷ best-case block
    /// migration time, plus this slack.
    pub queue_slack: usize,
    /// Fraction of the memory hard limit at which a slave scavenges
    /// references of inactive jobs (§III-C3).
    pub scavenge_threshold: f64,
    /// Pending-list discipline at the master (paper: FIFO; SJF and EDF
    /// are the future-work alternatives, see
    /// [`MigrationOrder`]).
    #[serde(default)]
    pub migration_order: MigrationOrder,
    /// Maximum concurrent migrations per slave disk. The paper
    /// "serializes migrations and moves one block at a time into memory
    /// in order to limit disk read concurrency" (§III-B); values > 1
    /// exist for the ablation study quantifying that choice.
    #[serde(default = "default_max_concurrent")]
    pub max_concurrent_migrations: usize,
    /// Enable the §IV-A in-progress estimate refresh (update the estimate
    /// every heartbeat once an active migration runs past it). The paper
    /// added this after observing slow adaptation to sudden bandwidth
    /// drops; setting it to `false` reproduces their earlier prototype
    /// for the ablation study.
    #[serde(default = "default_true")]
    pub in_progress_refresh: bool,
}

fn default_max_concurrent() -> usize {
    1
}

fn default_true() -> bool {
    true
}

impl Default for DyrsConfig {
    fn default() -> Self {
        DyrsConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            retarget_interval: SimDuration::from_millis(500),
            ewma_alpha: 0.5,
            queue_slack: 1,
            scavenge_threshold: 0.8,
            migration_order: MigrationOrder::Fifo,
            max_concurrent_migrations: default_max_concurrent(),
            in_progress_refresh: default_true(),
        }
    }
}

impl DyrsConfig {
    /// The ideal local queue depth for a slave whose disk reads a block of
    /// `block_bytes` at `disk_bw` bytes/sec when idle: the queue "should
    /// not totally drain in the interval it takes to fetch more work"
    /// (§III-B), i.e. ⌈heartbeat ÷ best-case block time⌉ + slack.
    pub fn queue_depth(&self, block_bytes: u64, disk_bw: f64) -> usize {
        if block_bytes == 0 {
            return 1 + self.queue_slack;
        }
        let block_secs = block_bytes as f64 / disk_bw;
        let hb = self.heartbeat_interval.as_secs_f64();
        ((hb / block_secs).ceil() as usize).max(1) + self.queue_slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DyrsConfig::default();
        assert!(c.ewma_alpha > 0.0 && c.ewma_alpha <= 1.0);
        assert!(c.retarget_interval <= c.heartbeat_interval);
        assert!(c.scavenge_threshold > 0.0 && c.scavenge_threshold <= 1.0);
    }

    #[test]
    fn queue_depth_covers_heartbeat() {
        let c = DyrsConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            queue_slack: 1,
            ..DyrsConfig::default()
        };
        // 256 MB at 140 MB/s ≈ 1.83s per block → 1 block per heartbeat + slack
        let d = c.queue_depth(256 << 20, 140.0 * (1 << 20) as f64);
        assert_eq!(d, 2);
        // tiny blocks → deep queue
        let d = c.queue_depth(1 << 20, 140.0 * (1 << 20) as f64);
        assert_eq!(d, 141);
    }

    #[test]
    fn queue_depth_zero_block_is_minimal() {
        let c = DyrsConfig::default();
        assert_eq!(c.queue_depth(0, 1e8), 1 + c.queue_slack);
    }
}
