//! Shared DYRS types.

use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one migration (one block copied into one node's memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MigrationId(pub u64);

impl fmt::Display for MigrationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mig_{}", self.0)
    }
}

/// How a job's references to its migrated blocks are released (§III-C3).
///
/// A job opts in "when the job submitter issues the migration instruction".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionMode {
    /// The job (or a caching framework acting for it) issues an explicit
    /// evict command when it finishes.
    Explicit,
    /// The slave drops the job's reference as soon as the job reads the
    /// block — data is evicted sooner, keeping the footprint low.
    Implicit,
}

/// One job's interest in a migrated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRef {
    /// The interested job.
    pub job: JobId,
    /// Its eviction mode.
    pub eviction: EvictionMode,
}

/// One unit of migration work: copy `bytes` of `block` into memory. The
/// block may be wanted by several jobs; all of them land on the slave's
/// reference list when the migration is bound (§III-C3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// Unique id assigned by the master.
    pub id: MigrationId,
    /// Block to migrate.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// Jobs expecting to read the block.
    pub jobs: Vec<JobRef>,
    /// Nodes holding an on-disk replica the migration could run on.
    pub replicas: Vec<NodeId>,
    /// How many earlier bindings of this block were unbound by the failure
    /// detector (0 for a first attempt). Retry successors get a fresh
    /// [`MigrationId`] but carry the predecessor's count + 1 so the
    /// bounded-retry budget spans the whole chain.
    #[serde(default)]
    pub attempt: u32,
    /// Destination buffer tier chosen by tier-aware Algorithm 1, stamped
    /// when the migration is bound. 0 (memory) everywhere on the legacy
    /// 2-tier stack, and for pending work that has not been bound yet.
    #[serde(default)]
    pub dest_tier: u8,
}

/// A migration bound to a slave, as delivered by a pull response or by
/// Ignem's immediate binding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundMigration {
    /// The migration.
    pub migration: Migration,
    /// The slave it was bound to.
    pub node: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(MigrationId(4).to_string(), "mig_4");
    }

    #[test]
    fn eviction_modes_distinct() {
        assert_ne!(EvictionMode::Explicit, EvictionMode::Implicit);
    }

    #[test]
    fn migration_carries_all_jobs() {
        let m = Migration {
            id: MigrationId(0),
            block: BlockId(1),
            bytes: 10,
            jobs: vec![
                JobRef {
                    job: JobId(1),
                    eviction: EvictionMode::Implicit,
                },
                JobRef {
                    job: JobId(2),
                    eviction: EvictionMode::Explicit,
                },
            ],
            replicas: vec![NodeId(0)],
            attempt: 0,
            dest_tier: 0,
        };
        assert_eq!(m.jobs.len(), 2);
    }
}
