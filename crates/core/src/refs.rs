//! Per-block job reference lists (paper §III-C3, §IV-A1).
//!
//! "For each migrated data block, the slave maintains a reference list of
//! job IDs for jobs that are expected to read the block. ... A block is
//! evicted from memory when its reference list is empty."
//!
//! The implementation mirrors the paper's: a map from job id to the
//! list of blocks migrated for that job (the paper's §IV-A1 hash-map,
//! kept here as a `BTreeMap` so walks over it — eviction sweeps, the
//! `verify-audit` reports — are deterministic), alongside the per-block
//! reference sets.

use dyrs_dfs::{BlockId, JobId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Bidirectional job ↔ block reference tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReferenceLists {
    /// block → jobs still expecting to read it.
    by_block: BTreeMap<BlockId, BTreeSet<JobId>>,
    /// job → blocks migrated on its behalf (the §IV-A1 hash-map).
    by_job: BTreeMap<JobId, BTreeSet<BlockId>>,
}

impl ReferenceLists {
    /// Empty reference lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `job` to `block`'s reference list.
    pub fn add(&mut self, job: JobId, block: BlockId) {
        self.by_block.entry(block).or_default().insert(job);
        self.by_job.entry(job).or_default().insert(block);
    }

    /// Remove `job` from `block`'s reference list. Returns `true` if the
    /// block's list is now empty (i.e. the block is evictable).
    pub fn remove(&mut self, job: JobId, block: BlockId) -> bool {
        if let Some(jobs) = self.by_block.get_mut(&block) {
            jobs.remove(&job);
            if jobs.is_empty() {
                self.by_block.remove(&block);
            }
        }
        if let Some(blocks) = self.by_job.get_mut(&job) {
            blocks.remove(&block);
            if blocks.is_empty() {
                self.by_job.remove(&job);
            }
        }
        !self.by_block.contains_key(&block)
    }

    /// Remove every reference held by `job` (explicit evict command, or a
    /// scavenged dead job). Returns the blocks that became evictable, in
    /// deterministic (sorted) order.
    pub fn remove_job(&mut self, job: JobId) -> Vec<BlockId> {
        let Some(blocks) = self.by_job.remove(&job) else {
            return Vec::new();
        };
        let mut evictable = Vec::new();
        for block in blocks {
            if let Some(jobs) = self.by_block.get_mut(&block) {
                jobs.remove(&job);
                if jobs.is_empty() {
                    self.by_block.remove(&block);
                    evictable.push(block);
                }
            }
        }
        evictable
    }

    /// Remove references of every job for which `is_active` returns false
    /// (the memory-pressure scavenge that queries the cluster scheduler,
    /// §III-C3). Returns newly evictable blocks in deterministic order.
    pub fn scavenge(&mut self, is_active: impl Fn(JobId) -> bool) -> Vec<BlockId> {
        // Keys come out of the BTreeMap already sorted.
        let dead: Vec<JobId> = self
            .by_job
            .keys()
            .copied()
            .filter(|&j| !is_active(j))
            .collect();
        let mut evictable = Vec::new();
        for job in dead {
            evictable.extend(self.remove_job(job));
        }
        evictable.sort();
        evictable.dedup();
        evictable
    }

    /// Jobs currently referencing `block`.
    pub fn jobs_of(&self, block: BlockId) -> impl Iterator<Item = JobId> + '_ {
        self.by_block
            .get(&block)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// True if `block` has no referencing jobs.
    pub fn is_unreferenced(&self, block: BlockId) -> bool {
        !self.by_block.contains_key(&block)
    }

    /// Number of blocks with at least one reference.
    pub fn referenced_blocks(&self) -> usize {
        self.by_block.len()
    }

    /// Number of jobs holding at least one reference.
    pub fn active_jobs(&self) -> usize {
        self.by_job.len()
    }

    /// Drop everything (slave restart).
    pub fn clear(&mut self) {
        self.by_block.clear();
        self.by_job.clear();
    }
}

impl simkit::audit::Audit for ReferenceLists {
    /// The two maps are exact mirrors of one bidirectional relation
    /// (§IV-A1: the per-job hash-map exists purely to make per-job cleanup
    /// efficient — it must never disagree with the per-block lists), and
    /// neither side stores an empty set (an empty list means the block is
    /// evictable and the entry must be gone, §III-C3).
    fn audit(&self, report: &mut simkit::audit::AuditReport) {
        let c = "reference-lists";
        for (&block, jobs) in &self.by_block {
            report.check(
                !jobs.is_empty(),
                c,
                "no empty reference list is retained",
                || format!("{block} has an empty job set"),
            );
            for &job in jobs {
                report.check(
                    self.by_job.get(&job).is_some_and(|b| b.contains(&block)),
                    c,
                    "§IV-A1: by_block and by_job mirror each other",
                    || format!("{block} lists {job}, but {job} does not list {block}"),
                );
            }
        }
        for (&job, blocks) in &self.by_job {
            report.check(
                !blocks.is_empty(),
                c,
                "no empty per-job block set is retained",
                || format!("{job} has an empty block set"),
            );
            for &block in blocks {
                report.check(
                    self.by_block.get(&block).is_some_and(|j| j.contains(&job)),
                    c,
                    "§IV-A1: by_block and by_job mirror each other",
                    || format!("{job} lists {block}, but {block} does not list {job}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(i: u64) -> JobId {
        JobId(i)
    }
    fn b(i: u64) -> BlockId {
        BlockId(i)
    }

    #[test]
    fn add_remove_single() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(10));
        assert!(!r.is_unreferenced(b(10)));
        assert!(r.remove(j(1), b(10)), "last ref removal → evictable");
        assert!(r.is_unreferenced(b(10)));
        assert_eq!(r.active_jobs(), 0);
    }

    #[test]
    fn shared_block_evictable_only_after_all_jobs() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(10));
        r.add(j(2), b(10));
        assert!(!r.remove(j(1), b(10)));
        assert!(r.remove(j(2), b(10)));
    }

    #[test]
    fn remove_job_returns_exclusive_blocks_sorted() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(30));
        r.add(j(1), b(10));
        r.add(j(1), b(20));
        r.add(j(2), b(20)); // shared → not evictable when job 1 leaves
        let ev = r.remove_job(j(1));
        assert_eq!(ev, vec![b(10), b(30)]);
        assert!(!r.is_unreferenced(b(20)));
    }

    #[test]
    fn remove_unknown_job_is_noop() {
        let mut r = ReferenceLists::new();
        assert!(r.remove_job(j(9)).is_empty());
        assert!(r.remove(j(9), b(9)));
    }

    #[test]
    fn scavenge_clears_dead_jobs_only() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(1));
        r.add(j(2), b(2));
        r.add(j(3), b(2));
        r.add(j(3), b(3));
        // jobs 2 and 3 are dead; job 1 alive
        let ev = r.scavenge(|job| job == j(1));
        assert_eq!(ev, vec![b(2), b(3)]);
        assert!(!r.is_unreferenced(b(1)));
        assert_eq!(r.active_jobs(), 1);
    }

    #[test]
    fn counters() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(1));
        r.add(j(1), b(2));
        r.add(j(2), b(1));
        assert_eq!(r.referenced_blocks(), 2);
        assert_eq!(r.active_jobs(), 2);
        let jobs: Vec<JobId> = r.jobs_of(b(1)).collect();
        assert_eq!(jobs, vec![j(1), j(2)]);
    }

    #[test]
    fn audit_catches_deliberate_corruption() {
        use simkit::audit::{Audit, AuditReport};
        let audit = |r: &ReferenceLists| {
            let mut report = AuditReport::new();
            r.audit(&mut report);
            report
        };

        let mut r = ReferenceLists::new();
        r.add(j(1), b(10));
        r.add(j(2), b(10));
        assert!(audit(&r).is_clean());

        // Drop one direction of the relation behind the API's back: the
        // block still lists job 1, but job 1 no longer lists the block.
        r.by_job.remove(&j(1));
        assert!(!audit(&r).is_clean(), "missing mirror entry must be caught");

        // A retained empty set is also corruption: an empty reference
        // list means evictable, so the entry must be gone entirely.
        let mut r = ReferenceLists::new();
        r.add(j(3), b(30));
        r.by_block
            .get_mut(&b(30))
            .expect("just added")
            .remove(&j(3));
        assert!(!audit(&r).is_clean(), "empty retained set must be caught");
    }

    #[test]
    fn clear_drops_all() {
        let mut r = ReferenceLists::new();
        r.add(j(1), b(1));
        r.clear();
        assert_eq!(r.referenced_blocks(), 0);
        assert_eq!(r.active_jobs(), 0);
    }
}
