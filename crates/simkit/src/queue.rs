//! Deterministic event queue.
//!
//! Events are ordered by `(time, seq)`, where `seq` is a monotonically
//! increasing insertion counter. Two events scheduled for the same
//! instant therefore pop in insertion order, which makes
//! whole-simulation replays bit-identical across runs and platforms.
//!
//! The heap itself holds only POD `(time, seq, key)` entries; event
//! payloads live in a generational [`Slab`] beside it. Sift operations
//! on the heap then move 24-byte records instead of whole event enums,
//! and payload slots are reused instead of churning the allocator — the
//! event loop is the simulator's innermost hot path.

use crate::slab::Slab;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fires at `time`, payload behind `key` in the slab.
struct Entry {
    time: SimTime,
    seq: u64,
    key: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "first");
/// q.schedule(SimTime::from_secs(1), "second"); // same instant: FIFO
/// assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), "first"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), "second"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), "later"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    events: Slab<E>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Slab::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            events: Slab::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `time`.
    ///
    /// Scheduling in the past (before the last popped instant) is a logic
    /// error in the caller and panics in debug builds; in release it is
    /// clamped to the current instant so the simulation cannot travel
    /// backwards.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let time = time.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.events.insert(event);
        self.heap.push(Entry { time, seq, key });
    }

    /// Remove and return the earliest event, with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.last_popped = e.time;
        let event = self.events.take(e.key).expect("heap keys are live");
        Some((e.time, event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The instant of the most recently popped event (the queue's notion of "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drop all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.schedule(SimTime::from_secs(s), s);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(10), 10);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // schedule relative to popped time
        q.schedule(t + SimDuration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)] // the guard is a debug_assert
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn with_capacity_and_len() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn payload_slots_are_reused_across_pops() {
        // Steady-state churn (schedule one, pop one) must not grow the
        // payload slab: the whole point of the arena hot path.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u64);
        for i in 1..1000u64 {
            let (t, _) = q.pop().unwrap();
            q.schedule(t + SimDuration::from_secs(1), i);
        }
        assert!(
            q.events.capacity() <= 2,
            "slab grew to {} under steady churn",
            q.events.capacity()
        );
    }
}
