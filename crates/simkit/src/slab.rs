//! Generational slab allocator for hot-path records.
//!
//! The simulator's event and stream hot paths used to grow `Vec`s of
//! records forever (a cancelled stream left its metadata slot allocated
//! for the life of the run). This slab reuses slots deterministically
//! (LIFO free list, like the scheduler's entry slab) and tags every key
//! with the slot's generation, so a stale key held across a free/reuse
//! cycle misses instead of aliasing the new occupant.
//!
//! Keys are plain `u64`s — `generation << 32 | slot` — so they ride in
//! POD event payloads (the fluid-resource stream `tag`, the event-queue
//! heap entries) without borrowing the slab.

/// A generational slot map: `insert` returns a `u64` key that stays
/// valid exactly until the value is removed.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty slab with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Store `value`, returning its key. Freed slots are reused LIFO, so
    /// allocation order is deterministic.
    pub fn insert(&mut self, value: T) -> u64 {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.1.is_none(), "free list pointed at a live slot");
                slot.1 = Some(value);
                key(slot.0, idx)
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push((0, Some(value)));
                key(0, idx)
            }
        }
    }

    /// The value behind `key`, if it is still live (same generation).
    pub fn get(&self, key: u64) -> Option<&T> {
        let (gen, idx) = split(key);
        match self.slots.get(idx as usize) {
            Some((g, v)) if *g == gen => v.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the value behind `key`, if still live.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (gen, idx) = split(key);
        match self.slots.get_mut(idx as usize) {
            Some((g, v)) if *g == gen => v.as_mut(),
            _ => None,
        }
    }

    /// Remove and return the value behind `key`. The slot's generation is
    /// bumped, so the key (and any copy of it) is dead from here on.
    pub fn take(&mut self, key: u64) -> Option<T> {
        let (gen, idx) = split(key);
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.0 != gen {
            return None;
        }
        let value = slot.1.take()?;
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(value)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free) — the slab's footprint.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drop every value and forget all keys. Generations reset; only safe
    /// when no old keys survive the clear (e.g. a simulation teardown).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[inline]
fn key(gen: u32, idx: u32) -> u64 {
    (gen as u64) << 32 | idx as u64
}

#[inline]
fn split(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_take_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.take(b), Some("b"));
        assert_eq!(s.get(b), None, "taken key is dead");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo_with_fresh_generations() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        s.take(a);
        let c = s.insert(3);
        assert_eq!(s.capacity(), 2, "freed slot reused, no growth");
        assert_ne!(a, c, "reused slot carries a new generation");
        assert_eq!(s.get(a), None, "stale key misses the new occupant");
        assert_eq!(s.get(c), Some(&3));
    }

    #[test]
    fn double_take_is_none() {
        let mut s = Slab::new();
        let k = s.insert(7);
        assert_eq!(s.take(k), Some(7));
        assert_eq!(s.take(k), None);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(1);
        *s.get_mut(k).unwrap() = 9;
        assert_eq!(s.get(k), Some(&9));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = Slab::new();
        let k = s.insert(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.get(k), None);
    }
}
