//! Runtime invariant auditing and event-trace digests.
//!
//! Stateful components implement [`Audit`] to check their own conservation
//! invariants (reference-list mirrors, buffer accounting, estimate sanity)
//! into an [`AuditReport`]. The simulation driver — under its
//! `verify-audit` cargo feature — audits every component at heartbeat
//! boundaries and panics with the full violation list on the first dirty
//! report, so a broken invariant is caught at the heartbeat where it
//! appears rather than as a silently wrong figure.
//!
//! [`TraceDigest`] is an order-sensitive FNV-1a accumulator over the
//! dispatched event stream. Two runs of the same scenario under the same
//! seed must produce identical digests; a mismatch means nondeterminism
//! entered the event loop (exactly what `dyrs-verify lint` exists to keep
//! out at the source level).

use std::fmt;

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which component failed (e.g. `slave[3]`, `master`).
    pub component: String,
    /// The invariant, stated declaratively.
    pub invariant: &'static str,
    /// The observed state that contradicts it.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} — {}",
            self.component, self.invariant, self.detail
        )
    }
}

/// Collector the [`Audit`] implementations write into.
#[derive(Debug, Default)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `invariant` as violated by `component`.
    pub fn fail(&mut self, component: &str, invariant: &'static str, detail: String) {
        self.violations.push(AuditViolation {
            component: component.to_string(),
            invariant,
            detail,
        });
    }

    /// Record a violation unless `ok` holds. `detail` is only evaluated on
    /// failure, so checks stay cheap on the (overwhelmingly common) clean
    /// path.
    pub fn check(
        &mut self,
        ok: bool,
        component: &str,
        invariant: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !ok {
            self.fail(component, invariant, detail());
        }
    }

    /// True if nothing failed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Panic with every violation if the report is dirty. `context` names
    /// the audit point (e.g. `"heartbeat(node 2) @ 13.5s"`).
    pub fn assert_clean(&self, context: &str) {
        if self.is_clean() {
            return;
        }
        let mut msg = format!("audit failed at {context}:");
        for v in &self.violations {
            msg.push_str("\n  - ");
            msg.push_str(&v.to_string());
        }
        panic!("{msg}");
    }
}

/// Self-checking of a component's conservation invariants.
pub trait Audit {
    /// Check every invariant this component can verify locally, recording
    /// failures into `report`. Must not mutate observable state.
    fn audit(&self, report: &mut AuditReport);
}

/// Order-sensitive 64-bit FNV-1a digest over a byte/text stream.
///
/// Implements [`fmt::Write`], so event streams can be folded in without
/// allocating: `write!(digest, "{time:?}|{event:?}")?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest(u64);

impl TraceDigest {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest (FNV offset basis).
    pub const fn new() -> Self {
        TraceDigest(Self::OFFSET_BASIS)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Write for TraceDigest {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn clean_report_asserts_quietly() {
        let mut r = AuditReport::new();
        r.check(true, "x", "always holds", || unreachable!());
        assert!(r.is_clean());
        r.assert_clean("test");
    }

    #[test]
    fn violations_are_collected_not_thrown() {
        let mut r = AuditReport::new();
        r.check(false, "slave[0]", "pinned bytes conserved", || {
            "1 != 2".into()
        });
        r.fail("master", "pending mirrored", "extra block".into());
        assert!(!r.is_clean());
        assert_eq!(r.violations().len(), 2);
        assert_eq!(r.violations()[0].component, "slave[0]");
    }

    #[test]
    #[should_panic(expected = "pinned bytes conserved")]
    fn dirty_report_panics_with_details() {
        let mut r = AuditReport::new();
        r.fail("slave[0]", "pinned bytes conserved", "1 != 2".into());
        r.assert_clean("unit test");
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        a.update(b"xy");
        b.update(b"yx");
        assert_ne!(a.value(), b.value());
        let mut c = TraceDigest::new();
        c.update(b"x");
        c.update(b"y");
        assert_eq!(a.value(), c.value(), "chunking must not matter");
        assert_ne!(TraceDigest::new().value(), 0);
    }

    #[test]
    fn digest_accepts_fmt_writes() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        write!(a, "ev{}", 1).unwrap();
        b.update(b"ev1");
        assert_eq!(a.value(), b.value());
    }
}
