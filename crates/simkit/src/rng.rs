//! Seedable random numbers and the sampling distributions used by the
//! workload generators.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64, exactly as
//! specified by Blackman & Vigna. It is small, fast, fully reproducible
//! across platforms, and more than good enough for workload synthesis (we
//! are not doing cryptography). Implementing it here keeps the simulation
//! kernel independent of external RNG API churn.

/// A deterministic xoshiro256++ random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator from this one and a stream id.
    ///
    /// Used to give each workload / node / job its own stream so that adding
    /// one more consumer does not perturb the samples everyone else sees.
    pub fn derive(&self, stream: u64) -> Rng {
        // Mix the stream id into a fresh seed through SplitMix64 twice so
        // adjacent stream ids produce uncorrelated states.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let a = splitmix64(&mut sm);
        Rng::new(a ^ self.s[2].rotate_left(17))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe for `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: {lo} > {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64: {lo} > {hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Exponential with the given mean (`mean = 1/λ`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.f64_open().ln()
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std_dev");
        mean + std_dev * self.std_normal()
    }

    /// Log-normal where the *underlying* normal has parameters `(mu, sigma)`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Pareto (type I) with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed: used for job input sizes, which production traces show
    /// to be dominated by a few very large jobs.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto params");
        x_min / self.f64_open().powf(1.0 / alpha)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s`, via inverse
    /// transform on the exact CDF (O(n) precompute is avoided; this uses
    /// rejection-free search over partial sums and is intended for small `n`).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf over empty support");
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut u = self.f64() * h;
        for k in 1..=n {
            u -= (k as f64).powf(-s);
            if u <= 0.0 {
                return k;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let root = Rng::new(7);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow ±5%
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Rng::new(21);
        let n = 200_000;
        let mean = 8.8;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.1, "sample mean {m}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = Rng::new(23);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut r = Rng::new(31);
        let xs: Vec<f64> = (0..100_000).map(|_| r.pareto(1.0, 1.2)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 100.0, "expected heavy tail, max {max}");
    }

    #[test]
    fn zipf_rank1_most_likely() {
        let mut r = Rng::new(37);
        let mut counts = [0usize; 6];
        for _ in 0..50_000 {
            counts[r.zipf(5, 1.0) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(41);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn pick_returns_member() {
        let mut r = Rng::new(43);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }

    #[test]
    fn chance_respects_probability() {
        let mut r = Rng::new(47);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((24_000..=26_000).contains(&hits), "hits {hits}");
    }
}
