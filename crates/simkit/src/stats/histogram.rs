//! Fixed-bin histograms (linear or logarithmic bin edges).

use serde::{Deserialize, Serialize};

/// A histogram with precomputed bin edges.
///
/// Samples below the first edge land in an underflow bin and samples at or
/// above the last edge in an overflow bin, so no observation is ever lost —
/// important when rendering figure-style distributions from simulations with
/// occasional extreme stragglers.
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::linear(0.0, 10.0, 5);
/// for x in [0.5, 1.0, 7.3, 42.0] {
///     h.observe(x);
/// }
/// assert_eq!(h.bin_count(0), 2);   // 0.5 and 1.0 fall in [0, 2)
/// assert_eq!(h.overflow(), 1);     // 42.0
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>, // len = edges.len() + 1 (underflow .. overflow)
    total: u64,
}

impl Histogram {
    /// Build from explicit, strictly increasing bin edges.
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let n = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// `bins` equal-width bins covering `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo, "invalid linear histogram spec");
        let w = (hi - lo) / bins as f64;
        Self::from_edges((0..=bins).map(|i| lo + w * i as f64).collect())
    }

    /// `bins` logarithmically spaced bins covering `[lo, hi)`; `lo > 0`.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            bins >= 1 && lo > 0.0 && hi > lo,
            "invalid log histogram spec"
        );
        let (llo, lhi) = (lo.ln(), hi.ln());
        let w = (lhi - llo) / bins as f64;
        Self::from_edges((0..=bins).map(|i| (llo + w * i as f64).exp()).collect())
    }

    /// Record one sample.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        let idx = match self.edges.binary_search_by(|e| e.total_cmp(&x)) {
            Ok(i) => i + 1, // exactly on edge i → bin i (right-open bins)
            Err(i) => i,    // first edge greater than x
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the i-th *interior* bin `[edges[i], edges[i+1])`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts[i + 1]
    }

    /// Number of interior bins.
    pub fn num_bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// Samples below the first edge.
    pub fn underflow(&self) -> u64 {
        self.counts[0]
    }

    /// Samples at or above the last edge.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts nonempty")
    }

    /// The bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Iterator over `(bin_low, bin_high, count)` for interior bins.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.edges
            .windows(2)
            .zip(&self.counts[1..self.counts.len() - 1])
            .map(|(w, &c)| (w[0], w[1], c))
    }

    /// Merge another histogram with identical bin edges into this one
    /// (bin-wise count addition). Merging is associative and commutative,
    /// so per-shard histograms can be combined in any grouping — the
    /// property tests in `tests/proptests.rs` pin this down.
    ///
    /// Panics if the edge vectors differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "merging histograms with different bin edges"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Fraction of samples strictly below `x` (piecewise-constant estimate
    /// using whole bins; `x` should normally be a bin edge).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = self.counts[0];
        for (i, w) in self.edges.windows(2).enumerate() {
            if w[1] <= x {
                acc += self.counts[i + 1];
            } else {
                break;
            }
        }
        acc as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bins_count_correctly() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 5.5, 9.99] {
            h.observe(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_count(0), 2); // 0.0 and 0.5
        assert_eq!(h.bin_count(1), 1); // 1.0 on the edge goes right
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(-3.0);
        h.observe(1.0); // at the top edge → overflow (right-open)
        h.observe(42.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn log_bins_are_increasing_and_span() {
        let h = Histogram::logarithmic(1.0, 1024.0, 10);
        let e = h.edges();
        assert!((e[0] - 1.0).abs() < 1e-9);
        assert!((e[10] - 1024.0).abs() < 1e-6);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fraction_below_matches_counts() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for i in 0..10 {
            h.observe(i as f64 + 0.5);
        }
        assert!((h.fraction_below(4.0) - 0.4).abs() < 1e-12);
        assert!((h.fraction_below(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(0.0), 0.0);
    }

    #[test]
    fn iter_bins_yields_all() {
        let mut h = Histogram::linear(0.0, 3.0, 3);
        h.observe(0.1);
        h.observe(2.9);
        let bins: Vec<_> = h.iter_bins().collect();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].2, 1);
        assert_eq!(bins[2].2, 1);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.fraction_below(0.5), 0.0);
    }
}
