//! Time-series recorder for figure data (estimates over time, memory
//! usage over time, utilization traces, ...).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An append-only series of `(time, value)` observations.
///
/// Figures 1, 7 and 9 of the paper are time-series plots; the experiment
/// harness records raw points during a run and resamples them onto a
/// regular grid when rendering.
///
/// ```
/// use simkit::stats::TimeSeries;
/// use simkit::SimTime;
///
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::from_secs(1), 10.0);
/// ts.record(SimTime::from_secs(5), 20.0);
/// // sample-and-hold semantics
/// assert_eq!(ts.value_at(SimTime::from_secs(3)), Some(10.0));
/// let mean = ts.time_weighted_mean(SimTime::from_secs(1), SimTime::from_secs(9), 0.0);
/// assert!((mean - 15.0).abs() < 1e-9); // 4s at 10 + 4s at 20
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an observation. Times must be nondecreasing.
    pub fn record(&mut self, t: SimTime, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample: {v}");
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "time went backwards: {t} < {last}");
        }
        self.points.push((t, v));
    }

    /// Number of raw points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Value at time `t` under sample-and-hold (step) interpolation:
    /// the most recent observation at or before `t`. `None` before the
    /// first observation.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Resample onto a regular grid `[start, end]` with the given step,
    /// using sample-and-hold. Instants before the first observation yield
    /// `fill`.
    pub fn resample(
        &self,
        start: SimTime,
        end: SimTime,
        step: SimDuration,
        fill: f64,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "zero resample step");
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            out.push((t, self.value_at(t).unwrap_or(fill)));
            t += step;
        }
        out
    }

    /// Time-weighted mean over `[start, end]` under sample-and-hold, with
    /// `fill` used before the first observation. Returns `fill` for an
    /// empty window.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime, fill: f64) -> f64 {
        if end <= start {
            return fill;
        }
        let total = (end - start).as_micros() as f64;
        let mut acc = 0.0;
        let mut cur_t = start;
        let mut cur_v = self.value_at(start).unwrap_or(fill);
        for &(pt, pv) in &self.points {
            if pt <= start {
                continue;
            }
            if pt >= end {
                break;
            }
            acc += cur_v * (pt - cur_t).as_micros() as f64;
            cur_t = pt;
            cur_v = pv;
        }
        acc += cur_v * (end - cur_t).as_micros() as f64;
        acc / total
    }

    /// Merge another series into this one, interleaving by time with a
    /// stable two-pointer pass: on equal timestamps `self`'s points come
    /// first. The left-priority tie rule makes the operation associative
    /// (`(a·b)·c == a·(b·c)`), so per-shard series can be combined in any
    /// grouping — pinned down by the property tests in
    /// `tests/proptests.rs`.
    pub fn merge(&mut self, other: &TimeSeries) {
        if other.points.is_empty() {
            return;
        }
        let left = std::mem::take(&mut self.points);
        let mut out = Vec::with_capacity(left.len() + other.points.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < other.points.len() {
            if left[i].0 <= other.points[j].0 {
                out.push(left[i]);
                i += 1;
            } else {
                out.push(other.points[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&left[i..]);
        out.extend_from_slice(&other.points[j..]);
        self.points = out;
    }

    /// Maximum recorded value; `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_is_sample_and_hold() {
        let mut ts = TimeSeries::new();
        ts.record(t(1), 10.0);
        ts.record(t(5), 20.0);
        assert_eq!(ts.value_at(t(0)), None);
        assert_eq!(ts.value_at(t(1)), Some(10.0));
        assert_eq!(ts.value_at(t(3)), Some(10.0));
        assert_eq!(ts.value_at(t(5)), Some(20.0));
        assert_eq!(ts.value_at(t(100)), Some(20.0));
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.record(t(2), 1.0);
        ts.record(t(4), 2.0);
        let grid = ts.resample(t(0), t(5), SimDuration::from_secs(1), 0.0);
        let vals: Vec<f64> = grid.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn time_weighted_mean_steps() {
        let mut ts = TimeSeries::new();
        ts.record(t(0), 0.0);
        ts.record(t(5), 10.0);
        // [0,5): 0.0, [5,10): 10.0 → mean 5.0 over [0,10)
        let m = ts.time_weighted_mean(t(0), t(10), 0.0);
        assert!((m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_uses_fill_before_first() {
        let mut ts = TimeSeries::new();
        ts.record(t(5), 10.0);
        let m = ts.time_weighted_mean(t(0), t(10), 2.0);
        // [0,5): 2.0, [5,10): 10.0 → 6.0
        assert!((m - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_returns_fill() {
        let ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(t(5), t(5), 7.0), 7.0);
        assert_eq!(ts.value_at(t(1)), None);
        assert_eq!(ts.max_value(), None);
    }

    #[test]
    fn max_value() {
        let mut ts = TimeSeries::new();
        ts.record(t(1), 3.0);
        ts.record(t(2), 9.0);
        ts.record(t(3), 4.0);
        assert_eq!(ts.max_value(), Some(9.0));
    }
}
