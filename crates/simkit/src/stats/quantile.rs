//! Empirical quantiles and CDFs over collected samples.

use serde::{Deserialize, Serialize};

/// Linear-interpolated percentile of a **sorted** slice.
///
/// `p` is in `[0, 100]`. Returns 0.0 for an empty slice (simulation metrics
/// sometimes legitimately have no samples, e.g. zero failed tasks).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi || sorted[lo] == sorted[hi] {
        // the equal-sample shortcut also avoids last-ulp wobble from
        // interpolating between identical values, keeping the quantile
        // function exactly monotone
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        // clamp: interpolation must stay inside [sorted[lo], sorted[hi]]
        (sorted[lo] * (1.0 - frac) + sorted[hi] * frac).clamp(sorted[lo], sorted[hi])
    }
}

/// Empirical CDF evaluated at `points.len()` evenly spaced probabilities,
/// returned as `(value, cumulative_probability)` pairs — the series a
/// figure plots directly. Input need not be sorted.
pub fn cdf_points(samples: &[f64], points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two CDF points");
    if samples.is_empty() {
        return Vec::new();
    }
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    (0..points)
        .map(|i| {
            let p = i as f64 / (points - 1) as f64;
            (percentile(&xs, p * 100.0), p)
        })
        .collect()
}

/// A sample collector that yields quantiles on demand.
///
/// Stores all samples (experiments are small enough for that); sorting is
/// deferred and cached.
///
/// ```
/// use simkit::stats::Quantiles;
///
/// let mut q = Quantiles::new();
/// q.extend_from(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(q.median(), 2.5);
/// assert_eq!(q.fraction_at_most(3.0), 0.75);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Quantiles {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Quantiles {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Record many samples.
    pub fn extend_from(&mut self, xs: &[f64]) {
        self.samples.extend_from_slice(xs);
        self.sorted = false;
    }

    /// Merge another collector's samples into this one. Order-insensitive
    /// (quantiles are computed over the sorted multiset), so merging is
    /// associative and commutative.
    pub fn merge(&mut self, other: &Quantiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The p-th percentile (`p ∈ [0, 100]`).
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.ensure_sorted();
        percentile(&self.samples, p)
    }

    /// Median shorthand.
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// CDF series for plotting.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        cdf_points(&self.samples, points)
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_known_data() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 100.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn quantiles_collector() {
        let mut q = Quantiles::new();
        for i in (1..=10).rev() {
            q.observe(i as f64);
        }
        assert_eq!(q.count(), 10);
        assert!((q.median() - 5.5).abs() < 1e-12);
        assert!((q.mean() - 5.5).abs() < 1e-12);
        assert!((q.fraction_at_most(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(q.fraction_at_most(0.0), 0.0);
        assert_eq!(q.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut q = Quantiles::new();
        let mut rng = crate::rng::Rng::new(5);
        for _ in 0..1000 {
            q.observe(rng.exponential(2.0));
        }
        let cdf = q.cdf(50);
        assert_eq!(cdf.len(), 50);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be nondecreasing");
            assert!(w[0].1 <= w[1].1, "probs must be nondecreasing");
        }
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn observe_after_query_resorts() {
        let mut q = Quantiles::new();
        q.observe(1.0);
        q.observe(3.0);
        assert_eq!(q.median(), 2.0);
        q.observe(2.0);
        assert_eq!(q.median(), 2.0);
        q.observe(100.0);
        assert!((q.percentile(100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn extend_from_bulk() {
        let mut q = Quantiles::new();
        q.extend_from(&[3.0, 1.0, 2.0]);
        assert_eq!(q.count(), 3);
        assert_eq!(q.median(), 2.0);
    }
}
