//! Exponentially weighted moving average.

use serde::{Deserialize, Serialize};

/// An exponentially weighted moving average over `f64` samples.
///
/// `alpha` is the weight of the newest sample: `v ← alpha·x + (1−alpha)·v`.
/// Until the first observation the average is undefined and [`Ewma::get`]
/// returns `None`; callers that need a prior can use [`Ewma::get_or`].
///
/// This is the estimator DYRS slaves use for per-block migration time
/// (paper §IV-A): it smooths random disk-bandwidth fluctuation while still
/// tracking recent conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with the given newest-sample weight `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Fold in a new observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite EWMA sample: {x}");
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current average, if at least one sample has been observed.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first sample.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// True if no samples have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.value.is_none()
    }

    /// The configured newest-sample weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forget all history (used when a slave restarts).
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Raise the average to at least `x` *without* lowering it.
    ///
    /// DYRS refreshes an in-progress migration's estimate every heartbeat
    /// once its elapsed time exceeds the current estimate (paper §IV-A):
    /// the elapsed time is a **lower bound** on the true duration, so it
    /// must only ever push the estimate up.
    pub fn observe_lower_bound(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite EWMA sample: {x}");
        match self.value {
            None => self.value = Some(x),
            Some(v) if x > v => {
                // Blend like a normal observation but never drop below the
                // previous value (x > v guarantees the blend is above v).
                self.value = Some(self.alpha * x + (1.0 - self.alpha) * v);
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_sets_value() {
        let mut e = Ewma::new(0.3);
        assert!(e.is_empty());
        e.observe(10.0);
        assert_eq!(e.get(), Some(10.0));
    }

    #[test]
    fn blends_with_alpha() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        e.observe(20.0);
        assert_eq!(e.get(), Some(15.0));
        e.observe(15.0);
        assert_eq!(e.get(), Some(15.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        e.observe(100.0);
        for _ in 0..200 {
            e.observe(3.0);
        }
        assert!((e.get().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn get_or_default() {
        let e = Ewma::new(0.3);
        assert_eq!(e.get_or(7.0), 7.0);
    }

    #[test]
    fn lower_bound_never_decreases() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        e.observe_lower_bound(4.0); // below current: ignored
        assert_eq!(e.get(), Some(10.0));
        e.observe_lower_bound(30.0); // above: blended upward
        assert_eq!(e.get(), Some(20.0));
    }

    #[test]
    fn lower_bound_seeds_empty() {
        let mut e = Ewma::new(0.5);
        e.observe_lower_bound(12.0);
        assert_eq!(e.get(), Some(12.0));
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.observe(1.0);
        e.reset();
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        Ewma::new(0.0);
    }
}
