//! Streaming moments (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Single-pass mean / variance / min / max accumulator.
///
/// Uses Welford's numerically stable update; O(1) memory regardless of the
/// number of samples, so every task/job/node in a large simulation can carry
/// one of these.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in a sample.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (Chan's parallel formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n = n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.observe(x);
        }
        for &x in &xs[37..] {
            b.observe(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.observe(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }
}
