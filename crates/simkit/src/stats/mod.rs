//! Online statistics used throughout the simulator and the experiment
//! harness: exponentially weighted moving averages (the heart of DYRS's
//! migration-time estimator), streaming moments, histograms, empirical
//! quantiles/CDFs, and a time-series recorder for figures.

mod ewma;
mod histogram;
mod online;
mod quantile;
mod timeseries;

pub use ewma::Ewma;
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use quantile::{cdf_points, percentile, Quantiles};
pub use timeseries::TimeSeries;
