//! Simulated time.
//!
//! All simulation components share a single logical clock with microsecond
//! resolution. [`SimTime`] is an instant (microseconds since simulation
//! start) and [`SimDuration`] a span. Both are thin wrappers around `u64`
//! so they are `Copy`, totally ordered, and hash/compare exactly — no
//! floating-point drift can make two runs diverge.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, the base resolution of the simulated clock.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64` (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The ratio `self / rhs` as `f64`. Returns `f64::INFINITY` for a zero divisor
    /// with nonzero numerator, and 0.0 for `0/0`.
    #[inline]
    pub fn ratio(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics (in debug) on negative spans; use [`SimTime::saturating_since`]
    /// when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(9));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ratio_edge_cases() {
        let z = SimDuration::ZERO;
        let one = SimDuration::from_secs(1);
        assert_eq!(z.ratio(z), 0.0);
        assert_eq!(one.ratio(z), f64::INFINITY);
        assert!((one.ratio(SimDuration::from_secs(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_micros(3)); // 2.5 rounds to 3
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(20));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(1_234_567).to_string(), "1.235s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            [
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }
}
