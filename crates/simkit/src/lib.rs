//! # simkit — deterministic discrete-event simulation kernel
//!
//! `simkit` is the substrate every other crate in this workspace builds on.
//! It deliberately contains **no domain knowledge**: it provides simulated
//! time, a deterministic event queue, a seedable random-number generator with
//! the distributions the workload generators need, online statistics, and a
//! fluid-flow (processor-sharing) resource model used for disks and NICs.
//!
//! ## Determinism
//!
//! Everything in this crate is deterministic under a seed:
//!
//! * [`queue::EventQueue`] breaks time ties by insertion sequence number, so
//!   two runs with the same inputs pop events in the same order.
//! * [`rng::Rng`] is a small, fully specified xoshiro256++ generator; no
//!   platform-dependent entropy is ever consulted.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`audit`] | runtime invariant auditing ([`audit::Audit`]) and event-trace digests |
//! | [`time`] | [`SimTime`], [`SimDuration`] — microsecond-resolution simulated clock types |
//! | [`queue`] | deterministic binary-heap event queue |
//! | [`rng`] | xoshiro256++ RNG + uniform/exponential/normal/lognormal/pareto/zipf sampling |
//! | [`stats`] | EWMA, online moments, histograms, quantiles, time-series recorder |
//! | [`fluid`] | fluid-flow shared resource (processor sharing with concurrency degradation) |
//! | [`slab`] | generational slab allocator for hot-path records |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod fluid;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use fluid::{FluidResource, StreamId};
pub use queue::EventQueue;
pub use rng::Rng;
pub use slab::Slab;
pub use time::{SimDuration, SimTime};
