//! Fluid-flow (processor-sharing) resource model.
//!
//! Disks and NICs are modeled as fluid resources: a set of concurrent
//! *streams*, each with a number of bytes remaining, share the resource's
//! capacity in proportion to their weights. The aggregate capacity itself
//! degrades with concurrency (`cap(n) = base / (1 + d·(n−1))`), which
//! captures seek thrashing on spinning disks — the reason DYRS serializes
//! migrations at each slave (paper §III-B).
//!
//! The model is event-driven: between membership changes, rates are
//! constant, so the next completion time is exactly predictable. A caller
//! (the simulation driver) asks for [`FluidResource::next_completion`],
//! schedules an event, and tags it with the current [`FluidResource::generation`];
//! if membership changed in the meantime the generation won't match and the
//! stale event is ignored.
//!
//! Interference (the paper's `dd` readers) is modeled as streams with
//! [`f64::INFINITY`] bytes remaining: they consume their share of bandwidth
//! forever but never complete.

use crate::time::{SimDuration, SimTime};

/// Identifies a stream within one resource. Includes a stamp so a slot that
/// is freed and reused cannot be confused with its previous occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    slot: u32,
    stamp: u32,
}

#[derive(Debug, Clone)]
struct Stream {
    stamp: u32,
    remaining: f64, // bytes; INFINITY for interference streams
    weight: f64,
    cap: f64, // max transfer rate, bytes/sec (INFINITY = uncapped)
    tag: u64, // caller-defined payload (e.g. task id, migration id)
}

/// A shared resource with processor-sharing semantics and concurrency
/// degradation.
///
/// ```
/// use simkit::{FluidResource, SimTime};
///
/// // 100 B/s disk, no degradation
/// let mut disk = FluidResource::new(100.0, 0.0);
/// // a capped "application reader" and an uncapped "migration"
/// let reader = disk.add_stream_capped(SimTime::ZERO, 1000.0, 1.0, 10.0, 0);
/// let migration = disk.add_stream(SimTime::ZERO, 180.0, 1.0, 1);
/// // water-filling: the capped reader gets its 10 B/s, the migration
/// // soaks up the residual 90 B/s
/// assert_eq!(disk.stream_rate(reader), Some(10.0));
/// assert_eq!(disk.stream_rate(migration), Some(90.0));
/// // the migration finishes at exactly 2 s
/// let done = disk.advance(disk.next_completion().unwrap());
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].tag, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FluidResource {
    base_capacity: f64, // bytes/sec with one active stream
    degradation: f64,   // per-extra-stream capacity penalty
    slots: Vec<Option<Stream>>,
    free: Vec<u32>,
    active: usize,
    total_weight: f64,
    last_advance: SimTime,
    generation: u64,
    next_stamp: u32,
    /// Cumulative bytes transferred (for utilization accounting).
    bytes_moved: f64,
    /// Cumulative busy time (at least one active stream).
    busy: SimDuration,
}

/// Completion record returned by [`FluidResource::advance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Which stream finished.
    pub id: StreamId,
    /// The caller-defined tag it carried.
    pub tag: u64,
}

const EPS_BYTES: f64 = 1e-6;

impl FluidResource {
    /// A resource with `base_capacity` bytes/sec at concurrency 1 and a
    /// degradation coefficient `d ≥ 0`: with `n` concurrent streams the
    /// aggregate capacity is `base / (1 + d·(n−1))`.
    pub fn new(base_capacity: f64, degradation: f64) -> Self {
        assert!(
            base_capacity > 0.0 && base_capacity.is_finite(),
            "invalid capacity {base_capacity}"
        );
        assert!(
            degradation >= 0.0 && degradation.is_finite(),
            "invalid degradation {degradation}"
        );
        FluidResource {
            base_capacity,
            degradation,
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            total_weight: 0.0,
            last_advance: SimTime::ZERO,
            generation: 0,
            next_stamp: 0,
            bytes_moved: 0.0,
            busy: SimDuration::ZERO,
        }
    }

    /// Number of currently active streams.
    pub fn active_streams(&self) -> usize {
        self.active
    }

    /// Aggregate capacity (bytes/sec) at the current concurrency.
    pub fn aggregate_capacity(&self) -> f64 {
        if self.active == 0 {
            self.base_capacity
        } else {
            self.base_capacity / (1.0 + self.degradation * (self.active as f64 - 1.0))
        }
    }

    /// Configured single-stream capacity (bytes/sec).
    pub fn base_capacity(&self) -> f64 {
        self.base_capacity
    }

    /// Current transfer rate (bytes/sec) of one stream, or `None` if absent.
    pub fn stream_rate(&self, id: StreamId) -> Option<f64> {
        self.get(id)?;
        self.rates()
            .into_iter()
            .find(|&(slot, _)| slot == id.slot as usize)
            .map(|(_, r)| r)
    }

    /// Per-active-stream transfer rates via weighted water-filling:
    /// capacity is shared in proportion to weights, but no stream exceeds
    /// its cap; slack freed by capped streams is redistributed to the
    /// rest. Returns `(slot, rate)` pairs in slot order.
    fn rates(&self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.active);
        let mut unfixed: Vec<(usize, f64, f64)> = Vec::with_capacity(self.active); // slot, weight, cap
        for (slot, s) in self.slots.iter().enumerate() {
            if let Some(s) = s {
                unfixed.push((slot, s.weight, s.cap));
            }
        }
        let mut remaining = self.aggregate_capacity();
        let mut unfixed_weight: f64 = unfixed.iter().map(|&(_, w, _)| w).sum();
        // Water-filling: repeatedly fix streams whose cap is below their
        // fair share and redistribute. Terminates in ≤ n rounds.
        loop {
            if unfixed.is_empty() {
                break;
            }
            let share = remaining / unfixed_weight;
            let mut fixed_any = false;
            unfixed.retain(|&(slot, w, cap)| {
                if cap < share * w {
                    out.push((slot, cap));
                    remaining -= cap;
                    unfixed_weight -= w;
                    fixed_any = true;
                    false
                } else {
                    true
                }
            });
            if !fixed_any {
                for &(slot, w, _) in &unfixed {
                    out.push((slot, share * w));
                }
                break;
            }
        }
        out.sort_unstable_by_key(|&(slot, _)| slot);
        out
    }

    /// Bytes left on a stream, or `None` if absent.
    pub fn stream_remaining(&self, id: StreamId) -> Option<f64> {
        self.get(id).map(|s| s.remaining)
    }

    /// The caller-defined tag a stream carries, or `None` if absent.
    /// Lets a caller that allocated the tag from a slab free the slot
    /// when it cancels the stream instead of waiting for completion.
    pub fn stream_tag(&self, id: StreamId) -> Option<u64> {
        self.get(id).map(|s| s.tag)
    }

    /// Monotone counter bumped on every membership change; used to detect
    /// stale completion events.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total bytes transferred so far (finite streams and interference alike).
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Total time this resource had at least one active stream.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    fn get(&self, id: StreamId) -> Option<&Stream> {
        self.slots
            .get(id.slot as usize)?
            .as_ref()
            .filter(|s| s.stamp == id.stamp)
    }

    /// Advance the fluid state to `now`, returning any streams that
    /// completed (their remaining bytes reached zero). Completions are
    /// reported in slot order, which is deterministic.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        debug_assert!(now >= self.last_advance, "fluid clock went backwards");
        let dt = now.saturating_since(self.last_advance);
        self.last_advance = now;
        if self.active == 0 || dt.is_zero() {
            return Vec::new();
        }
        self.busy += dt;
        let dt_s = dt.as_secs_f64();
        let rates = self.rates();
        let mut done = Vec::new();
        for (slot, rate) in rates {
            let s = self.slots[slot].as_mut().expect("rates lists active slots");
            let moved = (rate * dt_s).min(s.remaining);
            if moved.is_finite() {
                self.bytes_moved += moved;
            }
            if s.remaining.is_finite() {
                s.remaining -= moved;
                if s.remaining <= EPS_BYTES {
                    done.push(Completion {
                        id: StreamId {
                            slot: slot as u32,
                            stamp: s.stamp,
                        },
                        tag: s.tag,
                    });
                }
            }
        }
        // Remove completed streams.
        for c in &done {
            let slot = c.id.slot as usize;
            let s = self.slots[slot].take().expect("completed stream present");
            self.total_weight -= s.weight;
            self.active -= 1;
            self.free.push(c.id.slot);
        }
        if !done.is_empty() {
            self.generation += 1;
            if self.active == 0 {
                self.total_weight = 0.0; // clear accumulated fp error
            }
        }
        done
    }

    /// Add a stream of `bytes` (may be `INFINITY` for interference) with the
    /// given relative `weight`. The resource must already be advanced to
    /// `now` by the caller (enforced in debug builds).
    pub fn add_stream(&mut self, now: SimTime, bytes: f64, weight: f64, tag: u64) -> StreamId {
        self.add_stream_capped(now, bytes, weight, f64::INFINITY, tag)
    }

    /// Like [`FluidResource::add_stream`] but with a per-stream rate cap
    /// (bytes/sec): the stream never transfers faster than `cap` even when
    /// the resource has spare capacity. Models application-level readers
    /// whose effective rate is bounded by request-at-a-time chunking
    /// rather than by the medium (HDFS task reads), while uncapped streams
    /// (migrations, `dd`) use everything they can get.
    pub fn add_stream_capped(
        &mut self,
        now: SimTime,
        bytes: f64,
        weight: f64,
        cap: f64,
        tag: u64,
    ) -> StreamId {
        debug_assert_eq!(self.last_advance, now, "add_stream without advance");
        assert!(bytes >= 0.0, "negative stream size");
        assert!(
            weight > 0.0 && weight.is_finite(),
            "invalid weight {weight}"
        );
        assert!(cap > 0.0, "invalid cap {cap}");
        let stamp = self.next_stamp;
        self.next_stamp = self.next_stamp.wrapping_add(1);
        let stream = Stream {
            stamp,
            remaining: bytes.max(EPS_BYTES * 2.0),
            weight,
            cap,
            tag,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(stream);
                s
            }
            None => {
                self.slots.push(Some(stream));
                (self.slots.len() - 1) as u32
            }
        };
        self.active += 1;
        self.total_weight += weight;
        self.generation += 1;
        StreamId { slot, stamp }
    }

    /// Change the resource's single-stream capacity in place (a gray
    /// failure degrading a disk, or its later restoration). The resource
    /// must already be advanced to `now` so in-flight streams are charged
    /// at the old rate up to the change instant; the generation bumps so
    /// completion events predicted at the old rate are discarded.
    pub fn set_base_capacity(&mut self, now: SimTime, cap: f64) {
        debug_assert_eq!(self.last_advance, now, "set_base_capacity without advance");
        assert!(cap > 0.0 && cap.is_finite(), "invalid capacity {cap}");
        self.base_capacity = cap;
        self.generation += 1;
    }

    /// Change one stream's rate cap in place (freezing a stuck stream to a
    /// trickle, or unfreezing it back to `INFINITY`). Returns `false` if
    /// the stream no longer exists. The resource must already be advanced
    /// to `now`; the generation bumps to invalidate stale completions.
    pub fn set_stream_cap(&mut self, now: SimTime, id: StreamId, cap: f64) -> bool {
        debug_assert_eq!(self.last_advance, now, "set_stream_cap without advance");
        assert!(cap > 0.0, "invalid cap {cap}");
        match self.slots.get_mut(id.slot as usize) {
            Some(Some(s)) if s.stamp == id.stamp => {
                s.cap = cap;
                self.generation += 1;
                true
            }
            _ => false,
        }
    }

    /// Remove a stream before completion (e.g. a cancelled migration or a
    /// toggled-off interference source). Returns its remaining bytes, or
    /// `None` if the stream no longer exists.
    pub fn remove_stream(&mut self, now: SimTime, id: StreamId) -> Option<f64> {
        debug_assert_eq!(self.last_advance, now, "remove_stream without advance");
        let entry = self.slots.get_mut(id.slot as usize)?;
        match entry {
            Some(s) if s.stamp == id.stamp => {
                let s = entry
                    .take()
                    .expect("slot occupancy verified by the is_some guard");
                self.total_weight -= s.weight;
                self.active -= 1;
                self.free.push(id.slot);
                self.generation += 1;
                if self.active == 0 {
                    self.total_weight = 0.0;
                }
                Some(s.remaining)
            }
            _ => None,
        }
    }

    /// Predicted instant of the earliest finite-stream completion at current
    /// rates, or `None` if only interference (or nothing) is active.
    ///
    /// The returned time is rounded **up** to the next microsecond so that
    /// advancing to it always completes the stream.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.active == 0 {
            return None;
        }
        let mut best: Option<f64> = None;
        for (slot, rate) in self.rates() {
            let s = self.slots[slot].as_ref().expect("active slot");
            if s.remaining.is_finite() && rate > 0.0 {
                let secs = s.remaining / rate;
                best = Some(best.map_or(secs, |b: f64| b.min(secs)));
            }
        }
        best.map(|secs| {
            let us = (secs * 1e6).ceil().max(1.0) as u64;
            self.last_advance + SimDuration::from_micros(us)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_stream_runs_at_base_capacity() {
        let mut r = FluidResource::new(100.0, 0.1); // 100 B/s
        let id = r.add_stream(SimTime::ZERO, 200.0, 1.0, 7);
        assert_eq!(r.stream_rate(id), Some(100.0));
        let fin = r.next_completion().unwrap();
        assert_eq!(fin, t(2.0));
        let done = r.advance(fin);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(r.active_streams(), 0);
    }

    #[test]
    fn two_streams_share_with_degradation() {
        let mut r = FluidResource::new(100.0, 0.25);
        r.add_stream(SimTime::ZERO, 1000.0, 1.0, 1);
        r.add_stream(SimTime::ZERO, 1000.0, 1.0, 2);
        // aggregate = 100/(1+0.25) = 80; each stream gets 40 B/s
        assert!((r.aggregate_capacity() - 80.0).abs() < 1e-9);
        let fin = r.next_completion().unwrap();
        assert_eq!(fin, t(25.0));
        let done = r.advance(fin);
        assert_eq!(done.len(), 2); // identical streams finish together
    }

    #[test]
    fn weights_split_proportionally() {
        let mut r = FluidResource::new(90.0, 0.0);
        let a = r.add_stream(SimTime::ZERO, 1000.0, 2.0, 1);
        let b = r.add_stream(SimTime::ZERO, 1000.0, 1.0, 2);
        assert!((r.stream_rate(a).unwrap() - 60.0).abs() < 1e-9);
        assert!((r.stream_rate(b).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn interference_stream_never_completes_but_consumes() {
        let mut r = FluidResource::new(100.0, 0.0);
        r.add_stream(SimTime::ZERO, f64::INFINITY, 1.0, 99);
        let id = r.add_stream(SimTime::ZERO, 100.0, 1.0, 1);
        assert_eq!(r.stream_rate(id), Some(50.0));
        let fin = r.next_completion().unwrap(); // only the finite stream counts
        assert_eq!(fin, t(2.0));
        let done = r.advance(fin);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert_eq!(r.active_streams(), 1); // interference still there
        assert!(r.next_completion().is_none());
    }

    #[test]
    fn rates_rebalance_when_stream_leaves() {
        let mut r = FluidResource::new(100.0, 0.0);
        let a = r.add_stream(SimTime::ZERO, 100.0, 1.0, 1);
        let b = r.add_stream(SimTime::ZERO, 100.0, 1.0, 2);
        r.advance(t(1.0)); // each moved 50 bytes
        assert!((r.stream_remaining(a).unwrap() - 50.0).abs() < 1e-6);
        let rem = r.remove_stream(t(1.0), b).unwrap();
        assert!((rem - 50.0).abs() < 1e-6);
        // a now gets full capacity: 50 bytes / 100 Bps = 0.5 s
        let fin = r.next_completion().unwrap();
        assert_eq!(fin, t(1.5));
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut r = FluidResource::new(10.0, 0.0);
        let g0 = r.generation();
        let id = r.add_stream(SimTime::ZERO, 10.0, 1.0, 0);
        assert!(r.generation() > g0);
        let g1 = r.generation();
        r.remove_stream(SimTime::ZERO, id);
        assert!(r.generation() > g1);
    }

    #[test]
    fn stale_id_lookups_fail() {
        let mut r = FluidResource::new(10.0, 0.0);
        let id = r.add_stream(SimTime::ZERO, 10.0, 1.0, 0);
        r.remove_stream(SimTime::ZERO, id);
        // slot reused with a new stamp
        let id2 = r.add_stream(SimTime::ZERO, 10.0, 1.0, 1);
        assert_eq!(id.slot, id2.slot);
        assert!(r.stream_rate(id).is_none());
        assert!(r.remove_stream(SimTime::ZERO, id).is_none());
        assert!(r.stream_rate(id2).is_some());
    }

    #[test]
    fn busy_time_and_bytes_accounted() {
        let mut r = FluidResource::new(100.0, 0.0);
        r.advance(t(5.0)); // idle: no busy time
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        r.add_stream(t(5.0), 100.0, 1.0, 0);
        let fin = r.next_completion().unwrap();
        r.advance(fin);
        assert_eq!(r.busy_time(), SimDuration::from_secs(1));
        assert!((r.bytes_moved() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn completion_time_rounds_up() {
        let mut r = FluidResource::new(3.0, 0.0); // awkward rate
        r.add_stream(SimTime::ZERO, 1.0, 1.0, 0);
        let fin = r.next_completion().unwrap();
        let done = r.advance(fin);
        assert_eq!(done.len(), 1, "stream must complete at predicted time");
    }

    #[test]
    fn zero_byte_stream_completes_immediately() {
        let mut r = FluidResource::new(100.0, 0.0);
        r.add_stream(SimTime::ZERO, 0.0, 1.0, 0);
        let fin = r.next_completion().unwrap();
        let done = r.advance(fin);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn capped_stream_never_exceeds_cap() {
        let mut r = FluidResource::new(100.0, 0.0);
        let id = r.add_stream_capped(SimTime::ZERO, 100.0, 1.0, 10.0, 0);
        assert_eq!(r.stream_rate(id), Some(10.0), "alone but capped");
        let fin = r.next_completion().unwrap();
        assert_eq!(fin, t(10.0));
    }

    #[test]
    fn uncapped_stream_takes_capped_streams_slack() {
        let mut r = FluidResource::new(100.0, 0.0);
        let capped = r.add_stream_capped(SimTime::ZERO, 1000.0, 1.0, 10.0, 0);
        let free = r.add_stream(SimTime::ZERO, 1000.0, 1.0, 1);
        // fair share would be 50/50; the capped stream only uses 10, the
        // uncapped one gets the remaining 90.
        assert_eq!(r.stream_rate(capped), Some(10.0));
        assert_eq!(r.stream_rate(free), Some(90.0));
    }

    #[test]
    fn contention_pushes_capped_streams_below_cap() {
        let mut r = FluidResource::new(100.0, 0.0);
        let ids: Vec<StreamId> = (0..20)
            .map(|i| r.add_stream_capped(SimTime::ZERO, 1e9, 1.0, 10.0, i))
            .collect();
        // 20 × 10 = 200 demanded > 100 capacity → each gets 5
        for id in &ids {
            assert!((r.stream_rate(*id).unwrap() - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_weight_interference_starves_light_readers() {
        // Two dd-style streams (weight 12, uncapped) against one capped
        // reader: the reader's share collapses well below its cap.
        let mut r = FluidResource::new(140.0, 0.0);
        r.add_stream(SimTime::ZERO, f64::INFINITY, 12.0, 0);
        r.add_stream(SimTime::ZERO, f64::INFINITY, 12.0, 1);
        let reader = r.add_stream_capped(SimTime::ZERO, 1e9, 1.0, 10.0, 2);
        let rate = r.stream_rate(reader).unwrap();
        assert!((rate - 140.0 / 25.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn water_filling_cascades() {
        // caps 5 and 20, plus one uncapped, capacity 100:
        // round 1: share 33.3 → cap-5 fixes; round 2: share 47.5 → cap-20
        // fixes; uncapped gets 75.
        let mut r = FluidResource::new(100.0, 0.0);
        let a = r.add_stream_capped(SimTime::ZERO, 1e9, 1.0, 5.0, 0);
        let b = r.add_stream_capped(SimTime::ZERO, 1e9, 1.0, 20.0, 1);
        let c = r.add_stream(SimTime::ZERO, 1e9, 1.0, 2);
        assert_eq!(r.stream_rate(a), Some(5.0));
        assert_eq!(r.stream_rate(b), Some(20.0));
        assert_eq!(r.stream_rate(c), Some(75.0));
    }

    #[test]
    fn set_base_capacity_reschedules_in_flight_streams() {
        let mut r = FluidResource::new(100.0, 0.0);
        r.add_stream(SimTime::ZERO, 200.0, 1.0, 0);
        let g = r.generation();
        r.advance(t(1.0)); // 100 bytes moved, 100 left
        r.set_base_capacity(t(1.0), 10.0); // disk degraded 10x
        assert!(r.generation() > g, "stale completions must be invalidated");
        let fin = r.next_completion().unwrap();
        assert_eq!(fin, t(11.0)); // 100 bytes at 10 B/s
        r.set_base_capacity(t(1.0), 100.0); // restored
        assert_eq!(r.next_completion().unwrap(), t(2.0));
    }

    #[test]
    fn set_stream_cap_freezes_and_unfreezes() {
        let mut r = FluidResource::new(100.0, 0.0);
        let id = r.add_stream(SimTime::ZERO, 100.0, 1.0, 0);
        assert!(r.set_stream_cap(SimTime::ZERO, id, 1e-3));
        r.advance(t(1.0)); // effectively stuck: ~1e-3 bytes moved
        assert!(r.stream_remaining(id).unwrap() > 99.0);
        assert!(r.set_stream_cap(t(1.0), id, f64::INFINITY));
        let fin = r.next_completion().unwrap();
        assert!(fin <= t(2.1), "unfrozen stream resumes at full rate");
        // stale ids are rejected
        r.advance(fin);
        assert!(!r.set_stream_cap(fin, id, 1.0));
    }

    #[test]
    fn many_streams_slot_reuse_is_consistent() {
        let mut r = FluidResource::new(1000.0, 0.05);
        let mut now = SimTime::ZERO;
        let mut live: Vec<StreamId> = Vec::new();
        for i in 0..100u64 {
            r.advance(now);
            let id = r.add_stream(now, 10.0 + i as f64, 1.0, i);
            live.push(id);
            if i % 3 == 0 {
                let victim = live.remove(0);
                r.remove_stream(now, victim);
            }
            now += SimDuration::from_millis(10);
        }
        // drain
        while r.next_completion().is_some() {
            let fin = r.next_completion().unwrap();
            r.advance(fin);
        }
        assert_eq!(r.active_streams(), 0);
    }
}
