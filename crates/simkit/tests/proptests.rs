//! Property-based tests for simkit invariants.

use proptest::prelude::*;
use simkit::stats::{percentile, Ewma, Histogram, OnlineStats, Quantiles, TimeSeries};
use simkit::{EventQueue, FluidResource, Rng, SimDuration, SimTime};

/// Build a time series from (already sorted) microsecond offsets, with the
/// point's index as its value so stability violations are observable.
fn series_from(times: &[u64], value_base: f64) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for (i, &t) in times.iter().enumerate() {
        ts.record(SimTime::from_micros(t), value_base + i as f64);
    }
    ts
}

proptest! {
    /// Popping an event queue always yields nondecreasing times, regardless
    /// of insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Equal-time events pop in insertion order (stability).
    #[test]
    fn queue_is_stable(n in 1usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..n {
            q.schedule(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// EWMA stays within the closed hull of its observations.
    #[test]
    fn ewma_bounded_by_samples(
        alpha in 0.01f64..1.0,
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut e = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            e.observe(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let v = e.get().unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "value {v} outside [{lo},{hi}]");
        }
    }

    /// observe_lower_bound is monotone: it never decreases the estimate.
    #[test]
    fn ewma_lower_bound_monotone(
        alpha in 0.01f64..1.0,
        xs in proptest::collection::vec(0.0f64..1e6, 1..100),
    ) {
        let mut e = Ewma::new(alpha);
        e.observe(500_000.0);
        let mut prev = e.get().unwrap();
        for &x in &xs {
            e.observe_lower_bound(x);
            let v = e.get().unwrap();
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    /// Percentile is monotone in p and bounded by the sample range.
    #[test]
    fn percentile_monotone(
        mut xs in proptest::collection::vec(-1e9f64..1e9, 1..200),
        ps in proptest::collection::vec(0.0f64..=100.0, 2..20),
    ) {
        xs.sort_by(f64::total_cmp);
        let mut sorted_ps = ps.clone();
        sorted_ps.sort_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for &p in &sorted_ps {
            let v = percentile(&xs, p);
            prop_assert!(v >= last);
            prop_assert!(v >= xs[0] && v <= *xs.last().unwrap());
            last = v;
        }
    }

    /// OnlineStats::merge is equivalent to observing sequentially.
    #[test]
    fn online_stats_merge_equivalence(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.observe(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.observe(x); }
        for &x in &xs[split..] { b.observe(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
        }
    }

    /// Histogram never loses a sample: interior bins + under/overflow = total.
    #[test]
    fn histogram_conserves_samples(
        xs in proptest::collection::vec(-100.0f64..200.0, 0..500),
    ) {
        let mut h = Histogram::linear(0.0, 100.0, 10);
        for &x in &xs { h.observe(x); }
        let interior: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(interior + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// Quantiles::fraction_at_most is a valid CDF: monotone, 0..=1.
    #[test]
    fn quantile_fraction_is_cdf(
        xs in proptest::collection::vec(0.0f64..1000.0, 1..200),
        probes in proptest::collection::vec(0.0f64..1000.0, 2..20),
    ) {
        let mut q = Quantiles::new();
        q.extend_from(&xs);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(f64::total_cmp);
        let mut last = 0.0f64;
        for &x in &sorted_probes {
            let f = q.fraction_at_most(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last);
            last = f;
        }
    }

    /// Fluid resource conserves work: bytes moved over any schedule never
    /// exceeds base_capacity × elapsed time (degradation only reduces it),
    /// and all finite streams eventually complete.
    #[test]
    fn fluid_conserves_and_drains(
        sizes in proptest::collection::vec(1.0f64..1e6, 1..30),
        degradation in 0.0f64..0.5,
        cap in 1e3f64..1e8,
    ) {
        let mut r = FluidResource::new(cap, degradation);
        let mut completed = 0usize;
        for (i, &s) in sizes.iter().enumerate() {
            r.advance(SimTime::ZERO);
            r.add_stream(SimTime::ZERO, s, 1.0, i as u64);
        }
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while let Some(fin) = r.next_completion() {
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop diverged");
            now = fin;
            completed += r.advance(now).len();
        }
        prop_assert_eq!(completed, sizes.len());
        let total: f64 = sizes.iter().sum();
        prop_assert!((r.bytes_moved() - total).abs() < total * 1e-6 + 1.0);
        // conservation: cannot move bytes faster than base capacity
        let elapsed = now.as_secs_f64();
        prop_assert!(r.bytes_moved() <= cap * elapsed * (1.0 + 1e-6) + 1.0,
            "moved {} in {}s at cap {}", r.bytes_moved(), elapsed, cap);
    }

    /// Fluid: with pure processor sharing (no degradation) and equal weights,
    /// the aggregate rate equals base capacity regardless of concurrency.
    #[test]
    fn fluid_equal_share_full_capacity(n in 1usize..20, cap in 1e3f64..1e6) {
        let mut r = FluidResource::new(cap, 0.0);
        for i in 0..n {
            r.advance(SimTime::ZERO);
            r.add_stream(SimTime::ZERO, 1e9, 1.0, i as u64);
        }
        prop_assert!((r.aggregate_capacity() - cap).abs() < 1e-9);
        let dt = SimTime::from_secs(10);
        r.advance(dt);
        prop_assert!((r.bytes_moved() - cap * 10.0).abs() < cap * 1e-6);
    }

    /// RNG: derive() streams are independent of sibling creation order.
    #[test]
    fn rng_derive_stable(seed in any::<u64>(), stream in any::<u64>()) {
        let root = Rng::new(seed);
        let mut a = root.derive(stream);
        let _ = root.derive(stream.wrapping_add(1)); // creating siblings doesn't disturb
        let mut b = root.derive(stream);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// below(n) is always < n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Water-filling: capped streams never exceed their caps, total
    /// allocation never exceeds aggregate capacity, and when demand
    /// exceeds capacity the resource is fully utilized.
    #[test]
    fn fluid_water_filling_invariants(
        caps in proptest::collection::vec(1.0f64..100.0, 1..12),
        capacity in 10.0f64..500.0,
    ) {
        let mut r = FluidResource::new(capacity, 0.0);
        let ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| r.add_stream_capped(SimTime::ZERO, 1e12, 1.0, c, i as u64))
            .collect();
        let mut total = 0.0;
        for (id, &cap) in ids.iter().zip(&caps) {
            let rate = r.stream_rate(*id).expect("live stream");
            prop_assert!(rate <= cap + 1e-9, "rate {rate} above cap {cap}");
            prop_assert!(rate >= 0.0);
            total += rate;
        }
        prop_assert!(total <= capacity + 1e-6, "allocated {total} > capacity {capacity}");
        let demand: f64 = caps.iter().sum();
        if demand >= capacity {
            prop_assert!(
                (total - capacity).abs() < 1e-6,
                "over-demanded resource must saturate: {total} vs {capacity}"
            );
        } else {
            prop_assert!(
                (total - demand).abs() < 1e-6,
                "under-demanded resource serves all demand: {total} vs {demand}"
            );
        }
    }

    /// Adding one uncapped stream soaks up exactly the residual capacity.
    #[test]
    fn fluid_uncapped_takes_residual(
        caps in proptest::collection::vec(1.0f64..20.0, 0..8),
        capacity in 100.0f64..500.0,
    ) {
        let mut r = FluidResource::new(capacity, 0.0);
        for (i, &c) in caps.iter().enumerate() {
            r.add_stream_capped(SimTime::ZERO, 1e12, 1.0, c, i as u64);
        }
        let free = r.add_stream(SimTime::ZERO, 1e12, 1.0, 999);
        let rate = r.stream_rate(free).expect("live");
        let demand: f64 = caps.iter().sum();
        if demand < capacity {
            // capped streams keep their caps; the uncapped one gets the rest
            // (as long as the fair share exceeds each cap, which holds here
            // only when caps are small — check the weaker invariant instead)
            prop_assert!(rate >= (capacity - demand) / (caps.len() as f64 + 1.0) - 1e-6);
            prop_assert!(rate <= capacity - 0.0 + 1e-6);
        }
    }

    /// Histogram::merge is associative and equivalent to observing the
    /// concatenated sample stream into one histogram.
    #[test]
    fn histogram_merge_associative(
        xs in proptest::collection::vec(-100.0f64..200.0, 0..120),
        ys in proptest::collection::vec(-100.0f64..200.0, 0..120),
        zs in proptest::collection::vec(-100.0f64..200.0, 0..120),
    ) {
        let fill = |samples: &[f64]| {
            let mut h = Histogram::linear(0.0, 100.0, 10);
            for &x in samples { h.observe(x); }
            h
        };
        let (a, b, c) = (fill(&xs), fill(&ys), fill(&zs));
        // (a·b)·c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a·(b·c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // sequential observation of the whole stream
        let whole = fill(&[xs.clone(), ys, zs].concat());
        prop_assert_eq!(ab_c.total(), whole.total());
        prop_assert_eq!(a_bc.total(), whole.total());
        for i in 0..whole.num_bins() {
            prop_assert_eq!(ab_c.bin_count(i), whole.bin_count(i));
            prop_assert_eq!(a_bc.bin_count(i), whole.bin_count(i));
        }
        prop_assert_eq!(ab_c.underflow(), whole.underflow());
        prop_assert_eq!(ab_c.overflow(), whole.overflow());
        prop_assert_eq!(a_bc.underflow(), whole.underflow());
        prop_assert_eq!(a_bc.overflow(), whole.overflow());
    }

    /// TimeSeries::merge is associative: the left-priority tie rule makes
    /// grouping irrelevant, point for point.
    #[test]
    fn timeseries_merge_associative(
        mut ta in proptest::collection::vec(0u64..1000, 0..50),
        mut tb in proptest::collection::vec(0u64..1000, 0..50),
        mut tc in proptest::collection::vec(0u64..1000, 0..50),
    ) {
        ta.sort_unstable();
        tb.sort_unstable();
        tc.sort_unstable();
        let a = series_from(&ta, 0.0);
        let b = series_from(&tb, 1000.0);
        let c = series_from(&tc, 2000.0);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.points(), a_bc.points());
        prop_assert_eq!(ab_c.len(), ta.len() + tb.len() + tc.len());
        // merged output is still a valid series: nondecreasing times
        prop_assert!(ab_c.points().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// Merging preserves stability: on equal timestamps every left point
    /// precedes every right point.
    #[test]
    fn timeseries_merge_is_stable(n in 1usize..20, t in 0u64..1000) {
        let left = series_from(&vec![t; n], 0.0);
        let right = series_from(&vec![t; n], 1000.0);
        let mut merged = left.clone();
        merged.merge(&right);
        let values: Vec<f64> = merged.points().iter().map(|&(_, v)| v).collect();
        let expect: Vec<f64> = (0..n).map(|i| i as f64)
            .chain((0..n).map(|i| 1000.0 + i as f64))
            .collect();
        prop_assert_eq!(values, expect);
    }

    /// Empty series: identity for merge, and every query degrades cleanly.
    #[test]
    fn timeseries_empty_edge_cases(
        mut times in proptest::collection::vec(0u64..1000, 0..50),
        probe in 0u64..2000,
    ) {
        times.sort_unstable();
        let s = series_from(&times, 0.0);
        let mut left = s.clone();
        left.merge(&TimeSeries::new());
        prop_assert_eq!(left.points(), s.points());
        let mut right = TimeSeries::new();
        right.merge(&s);
        prop_assert_eq!(right.points(), s.points());

        let empty = TimeSeries::new();
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.value_at(SimTime::from_micros(probe)), None);
        prop_assert_eq!(empty.max_value(), None);
        let grid = empty.resample(
            SimTime::ZERO,
            SimTime::from_micros(probe),
            SimDuration::from_micros(100),
            7.0,
        );
        prop_assert!(grid.iter().all(|&(_, v)| v == 7.0));
        prop_assert_eq!(
            empty.time_weighted_mean(SimTime::ZERO, SimTime::from_micros(probe), 3.5),
            3.5
        );
    }

    /// Quantiles::merge equals bulk observation, and the percentile
    /// function stays monotone on the merged collector.
    #[test]
    fn quantiles_merge_matches_bulk(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ps in proptest::collection::vec(0.0f64..=100.0, 2..12),
    ) {
        let mut merged = Quantiles::new();
        merged.extend_from(&xs);
        let mut other = Quantiles::new();
        other.extend_from(&ys);
        merged.merge(&other);
        let mut bulk = Quantiles::new();
        bulk.extend_from(&[xs, ys].concat());
        prop_assert_eq!(merged.count(), bulk.count());
        let mut sorted_ps = ps.clone();
        sorted_ps.sort_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for &p in &sorted_ps {
            let v = merged.percentile(p);
            prop_assert_eq!(v, bulk.percentile(p));
            prop_assert!(v >= last, "percentile must be monotone in p");
            last = v;
        }
    }

    /// Time arithmetic: (t + d) - t == d for values away from saturation.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
    }
}
