//! The live recording handle (`enabled` feature).

use crate::report::ObsReport;
use crate::snapshot::{
    FlightEntry, FlightRecord, GaugeSample, StatsSnapshot, FLIGHT_CAPACITY, MAX_AUTO_DUMPS,
    TOP_WINNERS,
};
use crate::span::{cause, ProvenanceRecord, SpanEvent, SpanState};
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use simkit::stats::{Histogram, TimeSeries};
use simkit::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Per-migration facts remembered at request time so that every later
/// span event is self-contained (carries block and size without the
/// emitter having to thread them through).
#[derive(Debug, Clone, Copy)]
struct Meta {
    block: u64,
    bytes: u64,
    /// Destination buffer tier, known once the migration is bound.
    tier: Option<u8>,
}

/// One flight-recorder ring entry. Borrowed statics only, so feeding the
/// ring on the span hot path never allocates; entries are converted to
/// owned [`FlightEntry`]s at dump time.
#[derive(Debug, Clone, Copy)]
struct FlightNote {
    at: SimTime,
    migration: u64,
    block: u64,
    state: &'static str,
    node: Option<u32>,
    cause: &'static str,
}

#[derive(Debug, Default)]
struct Inner {
    now: SimTime,
    report: ObsReport,
    meta: BTreeMap<u64, Meta>,
    passes: u64,
    /// Current state of every span with no terminal event yet, maintained
    /// incrementally by `record` so the snapshot census is O(open spans).
    open: BTreeMap<u64, SpanState>,
    /// Algorithm 1 winner roll-up: node → times chosen across all passes.
    wins: BTreeMap<u32, u64>,
    /// Flight recorder ring of the last `FLIGHT_CAPACITY` transitions.
    flight: VecDeque<FlightNote>,
    /// Transitions that fell out of the ring.
    flight_dropped: u64,
    /// Automatic dumps (quarantine, protocol violation), newest last.
    auto_dumps: Vec<FlightRecord>,
}

impl Inner {
    fn flight_push(&mut self, note: FlightNote) {
        if self.flight.len() == FLIGHT_CAPACITY {
            self.flight.pop_front();
            self.flight_dropped += 1;
        }
        self.flight.push_back(note);
    }

    fn flight_record(&self, reason: &str, node: Option<u32>) -> FlightRecord {
        FlightRecord {
            reason: reason.to_owned(),
            node,
            at: self.now,
            dropped: self.flight_dropped,
            entries: self
                .flight
                .iter()
                .map(|n| FlightEntry {
                    at: n.at,
                    migration: n.migration,
                    block: n.block,
                    state: n.state.to_owned(),
                    node: n.node,
                    cause: n.cause.to_owned(),
                })
                .collect(),
        }
    }
}

/// Recording handle threaded through master, slaves, and the sim driver.
///
/// Cheap to clone (all clones share one recorder) and single-threaded by
/// construction — the simulation event loop owns it; only the extracted
/// [`ObsReport`] crosses threads. `ObsHandle::default()` is a
/// *disconnected* handle: every call is a no-op and `is_enabled()` is
/// `false`, which is what components get when nothing attached telemetry
/// (e.g. unit tests constructing a `Master` directly).
#[derive(Debug, Clone, Default)]
pub struct ObsHandle(Option<Rc<RefCell<Inner>>>);

impl ObsHandle {
    /// A connected recorder.
    pub fn new() -> Self {
        let inner = Inner {
            report: ObsReport {
                enabled: true,
                ..ObsReport::default()
            },
            ..Inner::default()
        };
        ObsHandle(Some(Rc::new(RefCell::new(inner))))
    }

    /// Whether recording is active. Callers use this to skip building
    /// recording-only payloads (e.g. provenance candidate vectors) on hot
    /// paths.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advance the recorder's clock; the driver calls this once per
    /// dispatched event so every record is stamped with simulated time.
    #[inline]
    pub fn set_now(&self, t: SimTime) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().now = t;
        }
    }

    fn record(
        &self,
        migration: u64,
        state: SpanState,
        node: Option<NodeId>,
        why: &'static str,
        job: Option<u64>,
    ) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let Meta { block, bytes, tier } = inner.meta.get(&migration).copied().unwrap_or(Meta {
                block: 0,
                bytes: 0,
                tier: None,
            });
            let at = inner.now;
            inner.report.events.push(SpanEvent {
                at,
                migration,
                block,
                bytes,
                state,
                node: node.map(|n| n.0),
                cause: why,
                job,
                tier,
            });
            let counter = match state {
                SpanState::Pending => "span.pending",
                SpanState::Targeted => "span.targeted",
                SpanState::Bound => "span.bound",
                SpanState::Started => "span.started",
                SpanState::Finished => "span.finished",
                SpanState::Aborted => "span.aborted",
                SpanState::Evicted => "span.evicted",
            };
            *inner.report.counters.entry(counter).or_insert(0) += 1;
            if state.is_terminal() {
                inner.open.remove(&migration);
            } else {
                inner.open.insert(migration, state);
            }
            inner.flight_push(FlightNote {
                at,
                migration,
                block,
                state: state.name(),
                node: node.map(|n| n.0),
                cause: why,
            });
        }
    }

    /// The master queued a new migration request.
    pub fn migration_pending(
        &self,
        migration: u64,
        block: BlockId,
        bytes: u64,
        job: Option<JobId>,
    ) {
        self.migration_pending_why(migration, block, bytes, job, cause::REQUESTED);
    }

    /// Like [`ObsHandle::migration_pending`] with an explicit cause —
    /// retry successors open their span with [`cause::RETRY`] instead of
    /// [`cause::REQUESTED`].
    pub fn migration_pending_why(
        &self,
        migration: u64,
        block: BlockId,
        bytes: u64,
        job: Option<JobId>,
        why: &'static str,
    ) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().meta.insert(
                migration,
                Meta {
                    block: block.0,
                    bytes,
                    tier: None,
                },
            );
        }
        self.record(migration, SpanState::Pending, None, why, job.map(|j| j.0));
    }

    /// Algorithm 1 picked (or changed) the preferred source node.
    pub fn migration_targeted(&self, migration: u64, node: NodeId) {
        self.record(
            migration,
            SpanState::Targeted,
            Some(node),
            cause::RETARGET,
            None,
        );
    }

    /// The migration was handed to a slave (`cause` distinguishes delayed
    /// binding on heartbeat pull from Ignem's immediate binding). `tier`
    /// is the destination buffer tier Algorithm 1 picked; it sticks to
    /// the span, so every later event of this migration carries it.
    pub fn migration_bound(&self, migration: u64, node: NodeId, tier: u8, why: &'static str) {
        if let Some(inner) = &self.0 {
            if let Some(meta) = inner.borrow_mut().meta.get_mut(&migration) {
                meta.tier = Some(tier);
            }
        }
        self.record(migration, SpanState::Bound, Some(node), why, None);
    }

    /// The slave began streaming the block.
    pub fn migration_started(&self, migration: u64, node: NodeId) {
        self.record(
            migration,
            SpanState::Started,
            Some(node),
            cause::ADMITTED,
            None,
        );
    }

    /// Terminal: the block landed in memory. Also observes the
    /// `migration.duration_secs` histogram with the bound→finish latency.
    pub fn migration_finished(&self, migration: u64, node: NodeId, took: SimDuration) {
        self.record(
            migration,
            SpanState::Finished,
            Some(node),
            cause::COMPLETED,
            None,
        );
        self.observe("migration.duration_secs", took.as_secs_f64());
    }

    /// Terminal: the block landed but memory pressure evicted it in the
    /// same instant, so it never served a read from memory.
    pub fn migration_evicted(&self, migration: u64, node: NodeId, why: &'static str) {
        self.record(migration, SpanState::Evicted, Some(node), why, None);
    }

    /// Terminal: the migration was cancelled before completion.
    pub fn migration_aborted(&self, migration: u64, node: Option<NodeId>, why: &'static str) {
        self.record(migration, SpanState::Aborted, node, why, None);
    }

    /// A pressure eviction tried to push a buffered block down the tier
    /// stack: `to` names the receiving tier (`cause::EVICT_DEMOTE`) or is
    /// `None` when every lower tier was full and the copy was dropped
    /// (`cause::EVICT_DROP`). Feeds the `tier.*` counters and the flight
    /// recorder, so silent byte drops are now attributable.
    pub fn tier_evicted(&self, block: BlockId, node: NodeId, to: Option<u8>) {
        let (state, why, counter) = match to {
            Some(_) => ("demote", cause::EVICT_DEMOTE, "tier.evict_demote"),
            None => ("drop", cause::EVICT_DROP, "tier.evict_drop"),
        };
        self.counter_add(counter, 1);
        if to.is_some() {
            self.counter_add("tier.demotions", 1);
        }
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let at = inner.now;
            inner.flight_push(FlightNote {
                at,
                migration: 0,
                block: block.0,
                state,
                node: Some(node.0),
                cause: why,
            });
        }
    }

    /// A read served out of a middle tier promoted the block back into
    /// memory (hotness policy).
    pub fn tier_promoted(&self, block: BlockId, node: NodeId) {
        self.counter_add("tier.promotions", 1);
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let at = inner.now;
            inner.flight_push(FlightNote {
                at,
                migration: 0,
                block: block.0,
                state: "promote",
                node: Some(node.0),
                cause: cause::PROMOTED,
            });
        }
    }

    /// Record one Algorithm 1 retarget pass. The recorder assigns the
    /// monotone pass index, timestamps, and the pass-level rescored /
    /// skipped counts; callers fill everything else. `records` covers the
    /// rescored entries only — the incremental engine proves skipped
    /// entries unchanged, so their previous records remain authoritative.
    pub fn retarget_pass(&self, mut records: Vec<ProvenanceRecord>, rescored: u64, skipped: u64) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let pass = inner.passes;
            inner.passes += 1;
            let at = inner.now;
            for rec in &mut records {
                rec.pass = pass;
                rec.at = at;
                rec.rescored = rescored;
                rec.skipped = skipped;
                if let Some(winner) = rec.winner {
                    *inner.wins.entry(winner).or_insert(0) += 1;
                }
            }
            inner.report.provenance.append(&mut records);
            *inner.report.counters.entry("sched.rescored").or_insert(0) += rescored;
            *inner.report.counters.entry("sched.skipped").or_insert(0) += skipped;
        }
    }

    /// Bump a monotone counter.
    pub fn counter_add(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.0 {
            *inner.borrow_mut().report.counters.entry(name).or_insert(0) += by;
        }
    }

    /// Sample a gauge for `(name, key)` at the current simulated time.
    /// The key is a node index for `node.*` metrics and a job id for
    /// `job.*` metrics.
    pub fn gauge(&self, name: &'static str, key: u64, value: f64) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let at = inner.now;
            inner
                .report
                .gauges
                .entry((name, key))
                .or_insert_with(TimeSeries::new)
                .record(at, value);
        }
    }

    /// Record one sample into the named histogram (bins come from the
    /// catalog in `docs/OBSERVABILITY.md`).
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner
                .borrow_mut()
                .report
                .histograms
                .entry(name)
                .or_insert_with(|| histogram_for(name))
                .observe(value);
        }
    }

    /// Close every span that has no terminal event yet with an `aborted`
    /// record of cause `why`. The driver calls this once at end of run so
    /// completed runs never leave dangling spans: every migration span
    /// ends in exactly one terminal event, whatever the run cut short.
    pub fn close_dangling(&self, why: &'static str) {
        let Some(inner) = &self.0 else { return };
        let dangling: Vec<u64> = {
            let inner = inner.borrow();
            let mut seen = BTreeMap::new();
            for ev in &inner.report.events {
                let closed = seen.entry(ev.migration).or_insert(false);
                *closed = *closed || ev.state.is_terminal();
            }
            seen.into_iter()
                .filter(|&(_, closed)| !closed)
                .map(|(id, _)| id)
                .collect()
        };
        for id in dangling {
            self.migration_aborted(id, None, why);
        }
    }

    /// Extract everything recorded so far, leaving the recorder empty but
    /// still connected. The driver calls this once when building
    /// `SimResult`.
    pub fn take_report(&self) -> ObsReport {
        match &self.0 {
            Some(inner) => {
                let mut inner = inner.borrow_mut();
                let report = std::mem::take(&mut inner.report);
                inner.report.enabled = true;
                report
            }
            None => ObsReport::default(),
        }
    }

    /// Point-in-time view of the recorder: counters, latest gauge values,
    /// open-span census, and the top-N provenance winners. **Read-only**
    /// — a scrape never closes spans, never records anything, and never
    /// perturbs the recorder, so interleaved scrapes leave same-seed
    /// traces byte-identical.
    pub fn snapshot(&self) -> StatsSnapshot {
        let Some(inner) = &self.0 else {
            return StatsSnapshot::default();
        };
        let inner = inner.borrow();
        let counters = inner
            .report
            .counters
            .iter()
            .map(|(name, v)| ((*name).to_owned(), *v))
            .collect();
        let gauges = inner
            .report
            .gauges
            .iter()
            .filter_map(|((name, key), series)| {
                series.points().last().map(|&(at, value)| GaugeSample {
                    name: (*name).to_owned(),
                    key: *key,
                    value,
                    at,
                })
            })
            .collect();
        let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
        for state in inner.open.values() {
            *census.entry(state.name()).or_insert(0) += 1;
        }
        let open_spans = census
            .into_iter()
            .map(|(name, count)| (name.to_owned(), count))
            .collect();
        let mut top_winners: Vec<(u32, u64)> =
            inner.wins.iter().map(|(&node, &won)| (node, won)).collect();
        top_winners.sort_by_key(|&(node, won)| (std::cmp::Reverse(won), node));
        top_winners.truncate(TOP_WINNERS);
        StatsSnapshot {
            at: inner.now,
            enabled: true,
            counters,
            gauges,
            open_spans,
            top_winners,
        }
    }

    /// Dump the flight recorder on demand. Read-only, like
    /// [`ObsHandle::snapshot`].
    pub fn flight_dump(&self, reason: &str, node: Option<NodeId>) -> FlightRecord {
        match &self.0 {
            Some(inner) => inner.borrow().flight_record(reason, node.map(|n| n.0)),
            None => FlightRecord::default(),
        }
    }

    /// Automatic dump: append an out-of-band marker to the ring (so the
    /// triggering event itself is part of the story) and retain the dump
    /// for later retrieval via [`ObsHandle::auto_flight_dumps`]. The
    /// daemons call this on node quarantine and protocol violations.
    pub fn flight_auto_dump(&self, reason: &'static str, node: Option<NodeId>) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let at = inner.now;
            inner.flight_push(FlightNote {
                at,
                migration: 0,
                block: 0,
                state: "mark",
                node: node.map(|n| n.0),
                cause: reason,
            });
            let record = inner.flight_record(reason, node.map(|n| n.0));
            if inner.auto_dumps.len() == MAX_AUTO_DUMPS {
                inner.auto_dumps.remove(0);
            }
            inner.auto_dumps.push(record);
        }
    }

    /// The automatic flight dumps taken so far (oldest first, capped at
    /// [`MAX_AUTO_DUMPS`]). Non-destructive.
    pub fn auto_flight_dumps(&self) -> Vec<FlightRecord> {
        match &self.0 {
            Some(inner) => inner.borrow().auto_dumps.clone(),
            None => Vec::new(),
        }
    }
}

/// Bin layout per histogram name. Migration durations span ~ms (small
/// blocks on fast disks) to hours (stragglers under interference), so the
/// default is logarithmic.
fn histogram_for(name: &str) -> Histogram {
    match name {
        "migration.duration_secs" => Histogram::logarithmic(1e-3, 1e4, 70),
        _ => Histogram::logarithmic(1e-6, 1e6, 60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanState;

    #[test]
    fn disconnected_handle_records_nothing() {
        let h = ObsHandle::default();
        assert!(!h.is_enabled());
        h.migration_pending(1, BlockId(1), 64, None);
        h.counter_add("span.pending", 1);
        h.gauge("node.buffer_bytes", 0, 1.0);
        h.observe("migration.duration_secs", 1.0);
        let r = h.take_report();
        assert!(!r.enabled);
        assert!(r.events.is_empty());
        assert!(r.counters.is_empty());
    }

    #[test]
    fn lifecycle_records_self_contained_events() {
        let h = ObsHandle::new();
        assert!(h.is_enabled());
        h.set_now(SimTime::from_secs(1));
        h.migration_pending(5, BlockId(42), 1024, Some(JobId(3)));
        h.set_now(SimTime::from_secs(2));
        h.migration_bound(5, NodeId(1), 1, cause::HEARTBEAT_PULL);
        h.migration_finished(5, NodeId(1), SimDuration::from_secs(4));
        let r = h.take_report();
        assert!(r.enabled);
        assert_eq!(r.events.len(), 3);
        // Later events inherit block/bytes from the pending record.
        assert!(r.events.iter().all(|e| e.block == 42 && e.bytes == 1024));
        // The destination tier sticks from the bound event onward.
        assert_eq!(r.events[0].tier, None);
        assert_eq!(r.events[1].tier, Some(1));
        assert_eq!(r.events[2].tier, Some(1));
        assert_eq!(r.events[1].at, SimTime::from_secs(2));
        assert_eq!(r.events[1].node, Some(1));
        assert_eq!(r.counter("span.pending"), 1);
        assert_eq!(r.counter("span.finished"), 1);
        let hist = r.histogram("migration.duration_secs").expect("histogram");
        assert_eq!(hist.total(), 1);
    }

    #[test]
    fn clones_share_the_recorder_and_take_resets() {
        let h = ObsHandle::new();
        let h2 = h.clone();
        h.set_now(SimTime::from_secs(1));
        h2.migration_pending(1, BlockId(1), 8, None);
        let r = h.take_report();
        assert_eq!(r.events.len(), 1);
        // After take the recorder is empty but still enabled.
        let r2 = h.take_report();
        assert!(r2.enabled);
        assert!(r2.events.is_empty());
    }

    #[test]
    fn retarget_pass_assigns_monotone_pass_index() {
        let h = ObsHandle::new();
        h.set_now(SimTime::from_secs(1));
        let rec = |mig| ProvenanceRecord {
            at: SimTime::ZERO,
            pass: 0,
            migration: mig,
            block: mig,
            bytes: 8,
            candidates: Vec::new(),
            winner: None,
            rescored: 0,
            skipped: 0,
        };
        h.retarget_pass(vec![rec(1), rec(2)], 2, 5);
        h.set_now(SimTime::from_secs(2));
        h.retarget_pass(vec![rec(1)], 1, 6);
        let r = h.take_report();
        assert_eq!(r.provenance.len(), 3);
        assert_eq!(r.provenance[0].pass, 0);
        assert_eq!(r.provenance[1].pass, 0);
        assert_eq!(r.provenance[2].pass, 1);
        assert_eq!(r.provenance[2].at, SimTime::from_secs(2));
        // Pass-level work counts are stamped on every record and summed
        // into counters.
        assert_eq!(r.provenance[0].rescored, 2);
        assert_eq!(r.provenance[0].skipped, 5);
        assert_eq!(r.provenance[2].rescored, 1);
        assert_eq!(r.counter("sched.rescored"), 3);
        assert_eq!(r.counter("sched.skipped"), 11);
    }

    #[test]
    fn snapshot_is_read_only_and_reflects_live_state() {
        let h = ObsHandle::new();
        h.set_now(SimTime::from_secs(1));
        h.migration_pending(1, BlockId(10), 64, Some(JobId(7)));
        h.migration_pending(2, BlockId(11), 64, None);
        h.migration_bound(1, NodeId(3), 0, cause::HEARTBEAT_PULL);
        h.gauge("sched.pending_depth", 0, 2.0);
        h.set_now(SimTime::from_secs(2));
        h.gauge("sched.pending_depth", 0, 1.0);

        let snap = h.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.at, SimTime::from_secs(2));
        assert_eq!(snap.counter("span.pending"), 2);
        assert_eq!(snap.counter("span.bound"), 1);
        // Latest gauge sample wins.
        assert_eq!(snap.gauge("sched.pending_depth", 0), Some(1.0));
        // Census: migration 1 is bound, migration 2 still pending.
        assert_eq!(
            snap.open_spans,
            vec![("bound".into(), 1), ("pending".into(), 1)]
        );
        assert_eq!(snap.open_total(), 2);

        // A scrape records nothing: the report is unchanged.
        let again = h.snapshot();
        assert_eq!(snap, again);
        let r = h.take_report();
        assert_eq!(r.events.len(), 3);

        // Terminal events retire spans from the census.
        h.migration_finished(1, NodeId(3), SimDuration::from_secs(1));
        h.migration_aborted(2, None, cause::MISSED_READ);
        assert_eq!(h.snapshot().open_total(), 0);
    }

    #[test]
    fn snapshot_rolls_up_top_provenance_winners() {
        let h = ObsHandle::new();
        let rec = |mig, winner| ProvenanceRecord {
            at: SimTime::ZERO,
            pass: 0,
            migration: mig,
            block: mig,
            bytes: 8,
            candidates: Vec::new(),
            winner,
            rescored: 0,
            skipped: 0,
        };
        h.retarget_pass(
            vec![
                rec(1, Some(4)),
                rec(2, Some(4)),
                rec(3, Some(1)),
                rec(4, None),
            ],
            4,
            0,
        );
        let snap = h.snapshot();
        assert_eq!(snap.top_winners, vec![(4, 2), (1, 1)]);
    }

    #[test]
    fn flight_recorder_ring_bounds_and_auto_dump() {
        let h = ObsHandle::new();
        // Overfill the ring: capacity + 10 pending transitions.
        for i in 0..(crate::FLIGHT_CAPACITY as u64 + 10) {
            h.set_now(SimTime::from_secs(i));
            h.migration_pending(i, BlockId(i), 64, None);
        }
        let dump = h.flight_dump("on-demand", None);
        assert_eq!(dump.reason, "on-demand");
        assert_eq!(dump.entries.len(), crate::FLIGHT_CAPACITY);
        assert_eq!(dump.dropped, 10);
        // Oldest retained entry is migration 10 (0..=9 fell out).
        assert_eq!(dump.entries[0].migration, 10);

        // Auto dump appends a marker naming the node and retains the
        // record.
        h.flight_auto_dump("node-quarantined", Some(NodeId(2)));
        let dumps = h.auto_flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "node-quarantined");
        assert_eq!(dumps[0].node, Some(2));
        let last = dumps[0].entries.last().expect("nonempty");
        assert_eq!(last.state, "mark");
        assert_eq!(last.cause, "node-quarantined");
        assert_eq!(last.node, Some(2));
    }

    #[test]
    fn disconnected_handle_snapshot_is_empty() {
        let h = ObsHandle::default();
        let snap = h.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert_eq!(
            h.flight_dump("on-demand", None),
            crate::FlightRecord::default()
        );
        h.flight_auto_dump("node-quarantined", None);
        assert!(h.auto_flight_dumps().is_empty());
    }

    #[test]
    fn tier_events_feed_counters_and_flight() {
        let h = ObsHandle::new();
        h.set_now(SimTime::from_secs(1));
        h.tier_evicted(BlockId(5), NodeId(2), Some(1));
        h.tier_evicted(BlockId(6), NodeId(2), None);
        h.tier_promoted(BlockId(5), NodeId(2));
        let dump = h.flight_dump("check", None);
        let states: Vec<&str> = dump.entries.iter().map(|e| e.state.as_str()).collect();
        assert_eq!(states, vec!["demote", "drop", "promote"]);
        assert_eq!(dump.entries[0].cause, cause::EVICT_DEMOTE);
        assert_eq!(dump.entries[1].cause, cause::EVICT_DROP);
        let r = h.take_report();
        assert_eq!(r.counter("tier.demotions"), 1);
        assert_eq!(r.counter("tier.evict_demote"), 1);
        assert_eq!(r.counter("tier.evict_drop"), 1);
        assert_eq!(r.counter("tier.promotions"), 1);
    }

    #[test]
    fn terminal_state_per_span() {
        let h = ObsHandle::new();
        h.migration_pending(1, BlockId(1), 8, None);
        h.migration_aborted(1, None, cause::MISSED_READ);
        let r = h.take_report();
        let spans = r.spans();
        let span = &spans[&1];
        assert!(span.last().expect("nonempty").state.is_terminal());
        assert_eq!(
            span.iter()
                .filter(|e| e.state == SpanState::Aborted)
                .count(),
            1
        );
    }
}
