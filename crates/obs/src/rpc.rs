//! Counter names for the wire/RPC layer (`dyrs-net` and the simulator's
//! loopback seam), kept here so every recorder and every report consumer
//! agrees on the spelling.

/// Protocol frames moved through the wire codec this run.
pub const WIRE_FRAMES: &str = "wire.frames";

/// Encoded protocol bytes (frame headers included) moved this run.
pub const WIRE_BYTES: &str = "wire.bytes";

/// Frames a daemon dropped because the peer's socket died mid-write.
/// Nonzero means the shutdown accounting will (correctly) report loss.
pub const WIRE_SEND_FAILURES: &str = "wire.send_failures";

/// Protocol violations observed (bad magic, unknown version, truncated
/// or oversized frames, payloads that fail to decode).
pub const WIRE_PROTOCOL_ERRORS: &str = "wire.protocol_errors";
