//! Trace-file export: JSONL tables plus a Chrome `trace_event` file.
//!
//! The vendored `serde` is a compile-only stub, so all JSON here is built
//! by hand. That is safe because every string that reaches an export is a
//! controlled static identifier (state names, cause constants, metric
//! names) — nothing needs escaping — and every number is either an integer
//! or a finite `f64` (non-finite values are rendered as `null`
//! defensively). Output ordering follows the deterministic container
//! ordering of [`ObsReport`], so same-seed runs export byte-identical
//! files.

use crate::report::ObsReport;
use crate::span::SpanEvent;
use std::fmt::Write as _;
use std::path::Path;

/// Render an `f64` as a JSON value (`null` for non-finite input — Rust's
/// `Display` would otherwise emit `NaN`/`inf`, which is not JSON).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn push_span_json(out: &mut String, ev: &SpanEvent) {
    let _ = write!(
        out,
        "{{\"at_us\":{},\"migration\":{},\"block\":{},\"bytes\":{},\"state\":\"{}\",\"node\":{},\"cause\":\"{}\",\"job\":{}}}",
        ev.at.as_micros(),
        ev.migration,
        ev.block,
        ev.bytes,
        ev.state.name(),
        ev.node.map_or_else(|| "null".to_owned(), |n| n.to_string()),
        ev.cause,
        ev.job.map_or_else(|| "null".to_owned(), |j| j.to_string()),
    );
}

impl ObsReport {
    /// Span events as JSONL: one lifecycle transition per line.
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            push_span_json(&mut out, ev);
            out.push('\n');
        }
        out
    }

    /// The metrics registry as JSONL: one counter, gauge series, or
    /// histogram per line, discriminated by a `"kind"` field.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
            );
        }
        for ((name, key), ts) in &self.gauges {
            let _ = write!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{name}\",\"key\":{key},\"points\":["
            );
            for (i, &(t, v)) in ts.points().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", t.as_micros(), json_f64(v));
            }
            out.push_str("]}\n");
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"edges\":["
            );
            for (i, &e) in h.edges().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(e));
            }
            let _ = write!(out, "],\"underflow\":{},\"counts\":[", h.underflow());
            for i in 0..h.num_bins() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", h.bin_count(i));
            }
            let _ = writeln!(
                out,
                "],\"overflow\":{},\"total\":{}}}",
                h.overflow(),
                h.total()
            );
        }
        out
    }

    /// Algorithm 1 provenance as JSONL: one migration scoring per line.
    pub fn provenance_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.provenance {
            let _ = write!(
                out,
                "{{\"at_us\":{},\"pass\":{},\"migration\":{},\"block\":{},\"bytes\":{},\"candidates\":[",
                rec.at.as_micros(),
                rec.pass,
                rec.migration,
                rec.block,
                rec.bytes,
            );
            for (i, c) in rec.candidates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"node\":{},\"rank\":{},\"est_finish_secs\":{}}}",
                    c.node,
                    c.rank,
                    json_f64(c.est_finish_secs),
                );
            }
            let _ = writeln!(
                out,
                "],\"winner\":{},\"rescored\":{},\"skipped\":{}}}",
                rec.winner
                    .map_or_else(|| "null".to_owned(), |w| w.to_string()),
                rec.rescored,
                rec.skipped,
            );
        }
        out
    }

    /// A Chrome `trace_event` JSON document (the `{"traceEvents":[...]}`
    /// object form), loadable in `chrome://tracing` or Perfetto.
    ///
    /// Each migration becomes an async span (`ph:"b"`/`"e"`, grouped by
    /// id); intermediate transitions are async instants (`ph:"n"`); gauges
    /// become counter tracks (`ph:"C"`). Timestamps are already in
    /// microseconds, the unit `trace_event` expects.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };

        let mut seen = std::collections::BTreeSet::new();
        for ev in &self.events {
            let opened = !seen.insert(ev.migration);
            let phases: &[&str] = match (opened, ev.state.is_terminal()) {
                (false, false) => &["b"],
                (false, true) => &["b", "e"], // degenerate single-event span
                (true, false) => &["n"],
                (true, true) => &["e"],
            };
            for ph in phases {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"{}\",\"cat\":\"migration\",\"name\":\"mig_{}\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"state\":\"{}\",\"cause\":\"{}\",\"block\":{},\"bytes\":{}}}}}",
                    ph,
                    ev.migration,
                    ev.migration,
                    ev.node.unwrap_or(0),
                    ev.at.as_micros(),
                    ev.state.name(),
                    ev.cause,
                    ev.block,
                    ev.bytes,
                );
            }
        }
        for ((name, key), ts) in &self.gauges {
            for &(t, v) in ts.points() {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"name\":\"{}[{}]\",\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    name,
                    key,
                    key,
                    t.as_micros(),
                    json_f64(v),
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Write all four export files into `dir` (created if missing):
    /// `spans.jsonl`, `metrics.jsonl`, `provenance.jsonl`, `trace.json`.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("spans.jsonl"), self.spans_jsonl())?;
        std::fs::write(dir.join("metrics.jsonl"), self.metrics_jsonl())?;
        std::fs::write(dir.join("provenance.jsonl"), self.provenance_jsonl())?;
        std::fs::write(dir.join("trace.json"), self.chrome_trace_json())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{cause, CandidateScore, ProvenanceRecord, SpanEvent, SpanState};
    use simkit::SimTime;

    fn sample_report() -> ObsReport {
        let mut r = ObsReport {
            enabled: true,
            ..Default::default()
        };
        r.events.push(SpanEvent {
            at: SimTime::from_secs(1),
            migration: 7,
            block: 3,
            bytes: 128,
            state: SpanState::Pending,
            node: None,
            cause: cause::REQUESTED,
            job: Some(1),
            tier: None,
        });
        r.events.push(SpanEvent {
            at: SimTime::from_secs(2),
            migration: 7,
            block: 3,
            bytes: 128,
            state: SpanState::Bound,
            node: Some(2),
            cause: cause::HEARTBEAT_PULL,
            job: None,
            tier: Some(0),
        });
        r.events.push(SpanEvent {
            at: SimTime::from_secs(3),
            migration: 7,
            block: 3,
            bytes: 128,
            state: SpanState::Finished,
            node: Some(2),
            cause: cause::COMPLETED,
            job: None,
            tier: Some(0),
        });
        r.counters.insert("span.finished", 1);
        let mut ts = simkit::stats::TimeSeries::new();
        ts.record(SimTime::from_secs(1), 5.0);
        ts.record(SimTime::from_secs(2), 6.5);
        r.gauges.insert(("node.buffer_bytes", 2), ts);
        let mut h = simkit::stats::Histogram::linear(0.0, 10.0, 2);
        h.observe(1.0);
        r.histograms.insert("migration.duration_secs", h);
        r.provenance.push(ProvenanceRecord {
            at: SimTime::from_secs(1),
            pass: 0,
            migration: 7,
            block: 3,
            bytes: 128,
            candidates: vec![
                CandidateScore {
                    node: 1,
                    rank: 1,
                    est_finish_secs: 2.0,
                    tier: 0,
                },
                CandidateScore {
                    node: 2,
                    rank: 0,
                    est_finish_secs: 1.5,
                    tier: 0,
                },
            ],
            winner: Some(2),
            rescored: 1,
            skipped: 3,
        });
        r
    }

    #[test]
    fn spans_jsonl_shape() {
        let r = sample_report();
        let s = r.spans_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"state\":\"pending\""));
        assert!(lines[0].contains("\"node\":null"));
        assert!(lines[0].contains("\"job\":1"));
        assert!(lines[1].contains("\"cause\":\"heartbeat-pull\""));
        assert!(lines[2].contains("\"state\":\"finished\""));
    }

    #[test]
    fn metrics_jsonl_shape() {
        let r = sample_report();
        let s = r.metrics_jsonl();
        assert!(s.contains("{\"kind\":\"counter\",\"name\":\"span.finished\",\"value\":1}"));
        assert!(s.contains("\"kind\":\"gauge\",\"name\":\"node.buffer_bytes\",\"key\":2"));
        assert!(s.contains("[1000000,5],[2000000,6.5]"));
        assert!(s.contains("\"kind\":\"histogram\""));
        assert!(s.contains("\"counts\":[1,0]"));
    }

    #[test]
    fn provenance_jsonl_shape() {
        let r = sample_report();
        let s = r.provenance_jsonl();
        assert!(s.contains("\"winner\":2"));
        assert!(s.contains("{\"node\":2,\"rank\":0,\"est_finish_secs\":1.5}"));
        assert!(s.contains("\"rescored\":1,\"skipped\":3"));
    }

    #[test]
    fn chrome_trace_is_balanced_and_wrapped() {
        let r = sample_report();
        let s = r.chrome_trace_json();
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("]}"));
        assert_eq!(s.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"e\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"n\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"C\"").count(), 2);
    }

    #[test]
    fn non_finite_gauge_values_render_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }
}
