//! Zero-cost stand-in for the live `ObsHandle` when the `enabled` feature
//! is off (the `cargo bench` configuration).
//!
//! Same API surface, but the handle is a zero-sized type, `is_enabled()`
//! is a constant `false` the optimizer folds away, and every recording
//! method has an empty `#[inline]` body — instrumented call sites compile
//! to nothing, with no allocation and no branches.

use crate::report::ObsReport;
use crate::snapshot::{FlightRecord, StatsSnapshot};
use crate::span::ProvenanceRecord;
use dyrs_cluster::NodeId;
use dyrs_dfs::{BlockId, JobId};
use simkit::{SimDuration, SimTime};

/// No-op recording handle; see [the module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsHandle;

#[allow(clippy::unused_self)]
impl ObsHandle {
    /// A (no-op) recorder.
    #[inline]
    pub fn new() -> Self {
        ObsHandle
    }

    /// Always `false`: callers guard recording-only payload construction
    /// on this, so those paths dead-code-eliminate.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op.
    #[inline]
    pub fn set_now(&self, _t: SimTime) {}

    /// No-op.
    #[inline]
    pub fn migration_pending(
        &self,
        _migration: u64,
        _block: BlockId,
        _bytes: u64,
        _job: Option<JobId>,
    ) {
    }

    /// No-op.
    #[inline]
    pub fn migration_pending_why(
        &self,
        _migration: u64,
        _block: BlockId,
        _bytes: u64,
        _job: Option<JobId>,
        _why: &'static str,
    ) {
    }

    /// No-op.
    #[inline]
    pub fn migration_targeted(&self, _migration: u64, _node: NodeId) {}

    /// No-op.
    #[inline]
    pub fn migration_bound(&self, _migration: u64, _node: NodeId, _tier: u8, _why: &'static str) {}

    /// No-op.
    #[inline]
    pub fn migration_started(&self, _migration: u64, _node: NodeId) {}

    /// No-op.
    #[inline]
    pub fn migration_finished(&self, _migration: u64, _node: NodeId, _took: SimDuration) {}

    /// No-op.
    #[inline]
    pub fn migration_evicted(&self, _migration: u64, _node: NodeId, _why: &'static str) {}

    /// No-op.
    #[inline]
    pub fn migration_aborted(&self, _migration: u64, _node: Option<NodeId>, _why: &'static str) {}

    /// No-op.
    #[inline]
    pub fn tier_evicted(&self, _block: BlockId, _node: NodeId, _to: Option<u8>) {}

    /// No-op.
    #[inline]
    pub fn tier_promoted(&self, _block: BlockId, _node: NodeId) {}

    /// No-op (callers guard on `is_enabled()` and never build the records).
    #[inline]
    pub fn retarget_pass(&self, _records: Vec<ProvenanceRecord>, _rescored: u64, _skipped: u64) {}

    /// No-op.
    #[inline]
    pub fn counter_add(&self, _name: &'static str, _by: u64) {}

    /// No-op.
    #[inline]
    pub fn gauge(&self, _name: &'static str, _key: u64, _value: f64) {}

    /// No-op.
    #[inline]
    pub fn observe(&self, _name: &'static str, _value: f64) {}

    /// No-op.
    #[inline]
    pub fn close_dangling(&self, _why: &'static str) {}

    /// Always the empty, `enabled: false` report.
    #[inline]
    pub fn take_report(&self) -> ObsReport {
        ObsReport::default()
    }

    /// Always the empty, `enabled: false` snapshot.
    #[inline]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Always the empty record.
    #[inline]
    pub fn flight_dump(&self, _reason: &str, _node: Option<NodeId>) -> FlightRecord {
        FlightRecord::default()
    }

    /// No-op.
    #[inline]
    pub fn flight_auto_dump(&self, _reason: &'static str, _node: Option<NodeId>) {}

    /// Always empty.
    #[inline]
    pub fn auto_flight_dumps(&self) -> Vec<FlightRecord> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<ObsHandle>(), 0);
        let h = ObsHandle::new();
        assert!(!h.is_enabled());
        h.migration_pending(1, BlockId(1), 8, None);
        let r = h.take_report();
        assert!(!r.enabled);
        assert!(r.events.is_empty());
    }
}
