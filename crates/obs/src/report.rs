//! The collected observability data for one simulation run.

use crate::span::{ProvenanceRecord, SpanEvent};
use serde::{Deserialize, Serialize};
use simkit::stats::{Histogram, TimeSeries};
use std::collections::BTreeMap;

/// Everything recorded during one run: lifecycle span events, the metrics
/// registry (counters / per-key gauge series / histograms), and Algorithm 1
/// decision provenance.
///
/// This is plain owned data — unlike the recording handle it is `Send`, so
/// sweep runners can move it across threads with the rest of `SimResult`.
/// All containers iterate deterministically (`Vec` in recording order,
/// `BTreeMap` in key order), which is what makes the exported trace files
/// byte-identical across same-seed runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObsReport {
    /// Whether recording was active. `false` means the run was executed
    /// with observability off (disconnected handle or `obs` feature
    /// disabled) and every collection below is empty.
    pub enabled: bool,
    /// Lifecycle transitions in recording order (time-sorted, since the
    /// recorder is driven by the event loop).
    pub events: Vec<SpanEvent>,
    /// Monotone counters, e.g. `span.finished`.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge time series keyed by `(metric name, entity key)` — the key is
    /// a node index for `node.*` metrics and a job id for `job.*` metrics.
    pub gauges: BTreeMap<(&'static str, u64), TimeSeries>,
    /// Value distributions, e.g. `migration.duration_secs`.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Algorithm 1 scoring records, one per migration per retarget pass.
    pub provenance: Vec<ProvenanceRecord>,
}

impl ObsReport {
    /// Group span events by migration id, preserving per-migration
    /// transition order.
    pub fn spans(&self) -> BTreeMap<u64, Vec<&SpanEvent>> {
        let mut out: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
        for ev in &self.events {
            out.entry(ev.migration).or_default().push(ev);
        }
        out
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| **n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Gauge series for `(name, key)`, if any samples were recorded.
    pub fn gauge(&self, name: &str, key: u64) -> Option<&TimeSeries> {
        self.gauges
            .iter()
            .find(|((n, k), _)| *n == name && *k == key)
            .map(|(_, ts)| ts)
    }

    /// Histogram by name, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| **n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{cause, SpanState};
    use simkit::SimTime;

    fn ev(mig: u64, state: SpanState) -> SpanEvent {
        SpanEvent {
            at: SimTime::from_secs(1),
            migration: mig,
            block: mig,
            bytes: 64,
            state,
            node: None,
            cause: cause::REQUESTED,
            job: None,
            tier: None,
        }
    }

    #[test]
    fn spans_group_by_migration_in_order() {
        let mut r = ObsReport::default();
        r.events.push(ev(1, SpanState::Pending));
        r.events.push(ev(2, SpanState::Pending));
        r.events.push(ev(1, SpanState::Targeted));
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        let one = &spans[&1];
        assert_eq!(one.len(), 2);
        assert_eq!(one[0].state, SpanState::Pending);
        assert_eq!(one[1].state, SpanState::Targeted);
    }

    #[test]
    fn lookups_on_empty_report() {
        let r = ObsReport::default();
        assert_eq!(r.counter("span.finished"), 0);
        assert!(r.gauge("node.buffer_bytes", 0).is_none());
        assert!(r.histogram("migration.duration_secs").is_none());
    }
}
