//! Migration lifecycle spans and Algorithm 1 decision provenance.
//!
//! A migration's life is a span of state transitions
//! `pending → targeted → bound(node) → started → finished | aborted |
//! evicted`. Each transition is one [`SpanEvent`]: a flat, self-contained
//! record (migration id, block, bytes, node, cause) so a single JSONL line
//! can be understood without joining against other tables.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// One state in a migration's lifecycle.
///
/// The non-terminal states mirror the paper's pipeline: the master queues a
/// request (`Pending`, §III-A), Algorithm 1 picks a preferred source
/// replica (`Targeted`, §III-A2), binding is delayed until that node's
/// heartbeat pull (`Bound`, §III-A1), and the slave starts streaming when
/// disk bandwidth and memory admit it (`Started`). Every migration ends in
/// exactly one terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanState {
    /// Queued at the master, not yet assigned a preferred source node.
    Pending,
    /// Algorithm 1 chose (or re-chose) a preferred source node.
    Targeted,
    /// Handed to a slave on its heartbeat pull (delayed binding).
    Bound,
    /// The slave began streaming the block disk→memory.
    Started,
    /// Terminal: the block landed in memory.
    Finished,
    /// Terminal: cancelled before the block landed (first read beat the
    /// migration, job eviction, restart, discard at the slave, ...).
    Aborted,
    /// Terminal: the block landed but was evicted in the same instant to
    /// relieve memory pressure (never served a read from memory).
    Evicted,
}

impl SpanState {
    /// Whether this state ends the span.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanState::Finished | SpanState::Aborted | SpanState::Evicted
        )
    }

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanState::Pending => "pending",
            SpanState::Targeted => "targeted",
            SpanState::Bound => "bound",
            SpanState::Started => "started",
            SpanState::Finished => "finished",
            SpanState::Aborted => "aborted",
            SpanState::Evicted => "evicted",
        }
    }
}

/// Transition causes. Static strings so recording never allocates; the
/// catalog is documented in `docs/OBSERVABILITY.md`.
pub mod cause {
    /// Job submission asked the master to migrate this block (§III-A).
    pub const REQUESTED: &str = "requested";
    /// Algorithm 1 retarget pass picked a preferred source node.
    pub const RETARGET: &str = "retarget";
    /// Ignem mode bound immediately at request time, skipping delayed
    /// binding (the paper's strawman baseline).
    pub const IGNEM_IMMEDIATE: &str = "ignem-immediate";
    /// No live replica holds the block, so the request was dropped.
    pub const NO_LIVE_REPLICA: &str = "no-live-replica";
    /// The targeted node's heartbeat pull bound the migration (§III-A1).
    pub const HEARTBEAT_PULL: &str = "heartbeat-pull";
    /// Disk bandwidth and memory admitted the stream.
    pub const ADMITTED: &str = "admitted";
    /// The stream completed and the block is served from memory.
    pub const COMPLETED: &str = "completed";
    /// A task read the block from disk before migration finished, so the
    /// copy became useless (§III-C3 implicit eviction, pre-completion).
    pub const MISSED_READ: &str = "missed-read";
    /// Every referencing job finished or was evicted (§III-C3).
    pub const JOB_EVICTED: &str = "job-evicted";
    /// Memory pressure scavenged the queued entry before it started.
    pub const SCAVENGED: &str = "scavenged";
    /// By the time the slave dequeued the entry no live job referenced it.
    pub const UNREFERENCED: &str = "unreferenced";
    /// The block was already resident in this slave's memory.
    pub const ALREADY_BUFFERED: &str = "already-buffered";
    /// Memory pressure evicted the block in the instant it landed.
    pub const PRESSURE: &str = "pressure";
    /// The master restarted and dropped its soft state (§III-C).
    pub const MASTER_RESTART: &str = "master-restart";
    /// The slave restarted (or its node died) and dropped its queue.
    pub const SLAVE_RESTART: &str = "slave-restart";
    /// A successor migration re-queued after its predecessor was unbound
    /// from a suspect/stuck node (bounded retry, carries attempt count).
    pub const RETRY: &str = "retry";
    /// The failure detector suspected the bound node (missed heartbeat
    /// deadline) and unbound the not-yet-started migration.
    pub const NODE_SUSPECT: &str = "node-suspect";
    /// The bound migration exceeded its progress deadline without
    /// finishing (gray failure: stream wedged or node crawling).
    pub const STUCK_STREAM: &str = "stuck-stream";
    /// Terminal: the bounded-retry budget ran out; the master gives up on
    /// this block rather than retrying forever.
    pub const RETRIES_EXHAUSTED: &str = "retries-exhausted";
    /// The bound node started draining; the not-yet-started migration was
    /// revoked so a surviving replica can cover it (no strike — drains
    /// are intentional).
    pub const NODE_DRAINED: &str = "node-drained";
    /// A successor migration re-queued at its original admission position
    /// after its predecessor was revoked from a draining node.
    pub const DRAIN_RETARGET: &str = "drain-retarget";
    /// Terminal: the run ended with the span still open (work cut short by
    /// the last job completing or the horizon).
    pub const RUN_END: &str = "run-end";
    /// A pressure eviction demoted the block copy one tier down the
    /// storage stack instead of dropping it (a lower tier had room).
    pub const EVICT_DEMOTE: &str = "evict-demote";
    /// A pressure eviction dropped the block copy outright: no tier below
    /// had room (or none exists — the legacy 2-tier stack).
    pub const EVICT_DROP: &str = "evict-drop";
    /// A read served from a middle tier promoted the block back into
    /// memory (hotness policy).
    pub const PROMOTED: &str = "promoted";
    /// A migration bound to a middle tier completed its read but found
    /// the destination (and every tier below) full — the copy is dropped
    /// and only the wasted read was paid.
    pub const TIER_FULL: &str = "tier-full";
}

/// One lifecycle transition of one migration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Migration id (`dyrs::MigrationId.0`).
    pub migration: u64,
    /// Block being migrated (`BlockId.0`).
    pub block: u64,
    /// Block size in bytes.
    pub bytes: u64,
    /// New lifecycle state.
    pub state: SpanState,
    /// Node involved, when one is (target / bound / executing node).
    pub node: Option<u32>,
    /// Why the transition happened; one of the [`cause`] constants.
    pub cause: &'static str,
    /// Requesting job, when known (set on the `Pending` transition).
    pub job: Option<u64>,
    /// Destination buffer tier, known from the `Bound` transition onward
    /// (tier-aware Algorithm 1 picks a tier × replica pair at bind).
    /// `None` before binding, and in every pre-tier export.
    #[serde(default)]
    pub tier: Option<u8>,
}

/// Estimated finish time for one candidate replica node considered by
/// Algorithm 1 (`finish[n] = spb[n]·queued_bytes[n] + spb[n]·bytes`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateScore {
    /// Candidate source node.
    pub node: u32,
    /// Placement rank of the replica on this node (tie-break key).
    pub rank: u32,
    /// Estimated finish time in seconds if this node is chosen.
    pub est_finish_secs: f64,
    /// Destination buffer tier behind this score (the winning half of
    /// the tier × replica pair; 0 = memory on every legacy stack).
    #[serde(default)]
    pub tier: u8,
}

/// One migration's scoring inside one Algorithm 1 retarget pass.
///
/// `winner` is the candidate with the minimum `(est_finish_secs, rank)`;
/// `None` means no live replica was available. A placement is thus fully
/// explainable from this record alone: the winner's score is ≤ every other
/// candidate's, with rank breaking exact ties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Simulated time of the retarget pass.
    pub at: SimTime,
    /// Index of the retarget pass (0-based, monotone over the run).
    pub pass: u64,
    /// Migration being (re)targeted.
    pub migration: u64,
    /// Block being migrated.
    pub block: u64,
    /// Block size in bytes.
    pub bytes: u64,
    /// All live candidate replicas with their scores, in replica order.
    pub candidates: Vec<CandidateScore>,
    /// The chosen node, if any candidate was live.
    pub winner: Option<u32>,
    /// How many pending entries the pass containing this record rescored
    /// (stamped by the recorder, identical across one pass's records).
    pub rescored: u64,
    /// How many pending entries the pass skipped as provably unchanged
    /// (always 0 for the reference full-rescan engine).
    pub skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!SpanState::Pending.is_terminal());
        assert!(!SpanState::Targeted.is_terminal());
        assert!(!SpanState::Bound.is_terminal());
        assert!(!SpanState::Started.is_terminal());
        assert!(SpanState::Finished.is_terminal());
        assert!(SpanState::Aborted.is_terminal());
        assert!(SpanState::Evicted.is_terminal());
    }

    #[test]
    fn names_are_lowercase_and_distinct() {
        let all = [
            SpanState::Pending,
            SpanState::Targeted,
            SpanState::Bound,
            SpanState::Started,
            SpanState::Finished,
            SpanState::Aborted,
            SpanState::Evicted,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), all.len());
        assert!(names.iter().all(|n| *n == n.to_lowercase()));
    }
}
