//! Live telemetry snapshots and the crash flight recorder (admin plane).
//!
//! A [`StatsSnapshot`] is a cheap point-in-time view of a live recorder:
//! monotone counters, the *latest* sample of every gauge series, a census
//! of open (non-terminal) migration spans, and a top-N roll-up of
//! Algorithm 1 provenance winners. Producing one never closes spans and
//! never mutates the recorder, so a scrape is invisible to the event trace
//! — same-seed runs with and without interleaved scrapes export
//! byte-identical traces (pinned in `tests/determinism.rs`).
//!
//! The **flight recorder** is a bounded ring of the most recent span
//! transitions (plus out-of-band markers such as a node quarantine). It
//! can be dumped on demand over the wire, and the daemons dump it
//! automatically when a node is quarantined or a protocol violation
//! fires, yielding a [`FlightRecord`] that names the culprit and carries
//! the last [`FLIGHT_CAPACITY`] transitions leading up to the event.
//!
//! Unlike the recording handle, everything here is plain owned data
//! (`String`, not `&'static str`) so the types can cross the wire via
//! `dyrs-net` and outlive the recorder that produced them.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// How many recent span transitions the flight recorder retains. Old
/// entries are dropped (and counted in [`FlightRecord::dropped`]) once
/// the ring is full.
pub const FLIGHT_CAPACITY: usize = 256;

/// How many provenance winners [`StatsSnapshot::top_winners`] reports.
pub const TOP_WINNERS: usize = 8;

/// How many automatic flight dumps a recorder retains before dropping
/// the oldest — enough to cover a quarantine storm without unbounded
/// growth in a long-running daemon.
pub const MAX_AUTO_DUMPS: usize = 8;

/// The latest sample of one gauge series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name, e.g. `sched.pending_depth`.
    pub name: String,
    /// Entity key (node index for `node.*`/`detector.*`, job id for
    /// `job.*`, 0 for scalar gauges).
    pub key: u64,
    /// Most recent recorded value.
    pub value: f64,
    /// Simulated time of that sample.
    pub at: SimTime,
}

/// Point-in-time view of a live recorder; see [the module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Recorder clock at scrape time.
    pub at: SimTime,
    /// Whether the scraped handle was actually recording. `false` means
    /// the daemon ran with observability off and everything below is
    /// empty.
    pub enabled: bool,
    /// Every monotone counter with its current value, in name order.
    pub counters: Vec<(String, u64)>,
    /// The latest sample of every gauge series, in (name, key) order.
    pub gauges: Vec<GaugeSample>,
    /// Census of open (non-terminal) migration spans: state name →
    /// how many spans currently sit in that state.
    pub open_spans: Vec<(String, u64)>,
    /// Top-N Algorithm 1 winners as (node, times chosen), most-chosen
    /// first (node index breaks ties), capped at [`TOP_WINNERS`].
    pub top_winners: Vec<(u32, u64)>,
}

impl StatsSnapshot {
    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Latest value of the gauge `(name, key)`, if ever sampled.
    pub fn gauge(&self, name: &str, key: u64) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.key == key)
            .map(|g| g.value)
    }

    /// Total number of open (non-terminal) spans.
    pub fn open_total(&self) -> u64 {
        self.open_spans.iter().map(|(_, c)| *c).sum()
    }
}

/// One entry in the flight recorder ring: a span transition, or an
/// out-of-band marker (migration 0 / block 0) such as a quarantine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightEntry {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Migration id (0 for out-of-band markers).
    pub migration: u64,
    /// Block id (0 for out-of-band markers).
    pub block: u64,
    /// Span state name (`pending`, `bound`, ...) or marker kind
    /// (`mark`).
    pub state: String,
    /// Node involved, when one is.
    pub node: Option<u32>,
    /// Transition cause, from the `cause` catalog (or the marker
    /// reason).
    pub cause: String,
}

/// A dump of the flight recorder: the last [`FLIGHT_CAPACITY`] span
/// transitions leading up to `at`, stamped with why the dump happened
/// and which node (if any) triggered it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Why the dump was taken (`on-demand`, `node-quarantined`,
    /// `protocol-violation`, ...).
    pub reason: String,
    /// The node the dump is about, when one is (e.g. the quarantined
    /// node).
    pub node: Option<u32>,
    /// Recorder clock at dump time.
    pub at: SimTime,
    /// How many older transitions had already fallen out of the ring.
    pub dropped: u64,
    /// The retained transitions, oldest first.
    pub entries: Vec<FlightEntry>,
}

impl FlightRecord {
    /// Entries naming `node`, oldest first — the per-node slice of the
    /// story the dump tells.
    pub fn entries_for(&self, node: u32) -> impl Iterator<Item = &FlightEntry> {
        self.entries.iter().filter(move |e| e.node == Some(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lookups() {
        let snap = StatsSnapshot {
            at: SimTime::from_secs(3),
            enabled: true,
            counters: vec![("span.finished".into(), 4)],
            gauges: vec![GaugeSample {
                name: "sched.pending_depth".into(),
                key: 0,
                value: 6.0,
                at: SimTime::from_secs(3),
            }],
            open_spans: vec![("bound".into(), 2), ("pending".into(), 1)],
            top_winners: vec![(1, 9)],
        };
        assert_eq!(snap.counter("span.finished"), 4);
        assert_eq!(snap.counter("span.aborted"), 0);
        assert_eq!(snap.gauge("sched.pending_depth", 0), Some(6.0));
        assert_eq!(snap.gauge("sched.pending_depth", 1), None);
        assert_eq!(snap.open_total(), 3);
    }

    #[test]
    fn flight_record_filters_by_node() {
        let entry = |node| FlightEntry {
            node,
            ..FlightEntry::default()
        };
        let rec = FlightRecord {
            entries: vec![entry(Some(1)), entry(None), entry(Some(2)), entry(Some(1))],
            ..FlightRecord::default()
        };
        assert_eq!(rec.entries_for(1).count(), 2);
        assert_eq!(rec.entries_for(3).count(), 0);
    }
}
