//! # dyrs-obs — deterministic observability for the DYRS pipeline
//!
//! The paper's core claims are claims about *decisions*: delayed binding
//! uses the freshest bandwidth information (§III-A1), Algorithm 1 balances
//! load and avoids end-of-batch stragglers (§III-A2), and the EWMA refresh
//! reacts to sudden bandwidth drops (§IV-A). End-of-run roll-ups cannot
//! explain a wrong decision; this crate records the decisions themselves.
//!
//! Three pillars:
//!
//! 1. **Lifecycle spans** ([`SpanEvent`]): every migration gets a span
//!    `pending → targeted → bound(node) → started → finished | aborted |
//!    evicted`, each transition stamped with [`SimTime`](simkit::SimTime)
//!    and a cause (see [`cause`]).
//! 2. **Metrics registry**: typed counters, per-key gauge time series
//!    (reusing [`simkit::stats::TimeSeries`]) sampled at heartbeat
//!    boundaries, and histograms.
//! 3. **Decision provenance** ([`ProvenanceRecord`]): each Algorithm 1
//!    targeting pass records the candidate replica set with estimated
//!    finish times and the chosen winner, so a misplacement is explainable
//!    from the trace alone.
//!
//! Recording goes through [`ObsHandle`], a clonable handle the simulation
//! driver attaches to the master and every slave. The handle is real only
//! under the `enabled` cargo feature; otherwise it is a zero-sized no-op
//! and every recording call compiles away — hot paths pay nothing.
//!
//! Everything is keyed by simulated time and stored in deterministic
//! containers, so same-seed runs produce **byte-identical** trace files
//! (pinned by `tests/determinism.rs`). There is no wall clock anywhere,
//! consistent with `dyrs-verify lint`'s no-wall-clock rule.
//!
//! The collected [`ObsReport`] is plain owned data (it crosses threads in
//! sweep runners) and exports itself as JSONL plus a Chrome `trace_event`
//! file loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod report;
pub mod rpc;
mod snapshot;
mod span;

pub use report::ObsReport;
pub use snapshot::{
    FlightEntry, FlightRecord, GaugeSample, StatsSnapshot, FLIGHT_CAPACITY, MAX_AUTO_DUMPS,
    TOP_WINNERS,
};
pub use span::{cause, CandidateScore, ProvenanceRecord, SpanEvent, SpanState};

#[cfg(feature = "enabled")]
mod handle;
#[cfg(feature = "enabled")]
pub use handle::ObsHandle;

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::ObsHandle;
