//! The tentpole claim of the `dyrs-net` subsystem: routing every master ↔
//! slave ↔ client interaction through the loopback transport — encode,
//! frame, move the bytes through a real channel, decode — produces the
//! **identical event-trace digest** as the in-process driver.
//!
//! The digest folds every dispatched `(time, event)` pair into an
//! order-sensitive hash, so equality here means the codec is lossless
//! and side-effect-free for every message the protocol exchanges: no
//! field dropped, no precision lost, no reordering introduced. Combined
//! with `crates/net/tests/tcp_smoke.rs` (same codec over real sockets)
//! this is the loopback-vs-TCP equivalence argument in ARCHITECTURE.md.

use dyrs::MigrationPolicy;
use dyrs_experiments::runner::{run_all, SimTask};
use dyrs_experiments::scenarios::{hetero_config, homogeneous_config, with_workload};
use dyrs_sim::config::WireMode;
use dyrs_sim::{FailureEvent, SimResult};
use dyrs_workloads::sort;
use simkit::{SimDuration, SimTime};

const SEED: u64 = 47;

/// Run one scenario under the given wire mode and return its result.
fn run(label: &str, policy: MigrationPolicy, wire: WireMode, drill: bool) -> SimResult {
    let mut cfg = if drill {
        hetero_config(policy, SEED)
    } else {
        homogeneous_config(policy, SEED)
    };
    cfg.wire = wire;
    if drill {
        // Restarts exercise the revoke / re-request paths, which only
        // cross the wire when something goes wrong.
        cfg.failures = vec![
            FailureEvent::MasterRestart {
                at: SimTime::from_secs(6),
            },
            FailureEvent::SlaveRestart {
                at: SimTime::from_secs(14),
                node: dyrs_cluster::NodeId(2),
            },
        ];
    }
    let w = sort::sort_workload(2 << 30, SimDuration::from_secs(20), 0);
    let (cfg, jobs) = with_workload(cfg, w);
    let mut out = run_all(vec![SimTask::new(label, cfg, jobs)], 1);
    out.pop().expect("one task in, one result out").1
}

/// Assert in-process and loopback runs of `policy` are trace-identical.
fn assert_equivalent(policy: MigrationPolicy, drill: bool) {
    let name = format!("{policy:?}/drill={drill}");
    let direct = run(&name, policy, WireMode::InProcess, drill);
    let looped = run(&name, policy, WireMode::Loopback, drill);

    assert_eq!(
        direct.trace_digest, looped.trace_digest,
        "{name}: event-trace digest diverged between in-process and loopback"
    );
    assert_eq!(direct.end_time, looped.end_time, "{name}: end time");
    assert_eq!(direct.master, looped.master, "{name}: master stats");
    assert_eq!(
        direct.reads.len(),
        looped.reads.len(),
        "{name}: read records"
    );

    // The in-process run moved nothing through the hub; the loopback run
    // framed real bytes for every interaction.
    assert_eq!(direct.wire_frames, 0, "{name}: in-process moves no frames");
    assert!(
        looped.wire_frames > 0,
        "{name}: loopback must actually exercise the codec"
    );
    assert!(
        looped.wire_bytes > looped.wire_frames * dyrs_net::frame::HEADER_LEN as u64,
        "{name}: every frame carries a header plus payload"
    );
}

#[test]
fn dyrs_trace_is_identical_over_loopback() {
    // The paper's policy: heartbeats, pulls, binds, completions and
    // implicit evictions all cross the wire.
    assert_equivalent(MigrationPolicy::Dyrs, false);
}

#[test]
fn ignem_trace_is_identical_over_loopback() {
    // Ignem binds at submission time, exercising the immediate-bind
    // (client → master → slave) path the pull-based flow never takes.
    assert_equivalent(MigrationPolicy::Ignem, false);
}

#[test]
fn failure_drill_trace_is_identical_over_loopback() {
    // Master and slave restarts: revocations and re-requests cross the
    // wire, plus the detector's health traffic.
    assert_equivalent(MigrationPolicy::Dyrs, true);
}

#[test]
fn loopback_runs_are_bit_stable() {
    // The loopback transport itself must not introduce nondeterminism:
    // two runs under the same seed produce the same digest and the same
    // frame count.
    let a = run(
        "stability",
        MigrationPolicy::Dyrs,
        WireMode::Loopback,
        false,
    );
    let b = run(
        "stability",
        MigrationPolicy::Dyrs,
        WireMode::Loopback,
        false,
    );
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(a.wire_frames, b.wire_frames);
    assert_eq!(a.wire_bytes, b.wire_bytes);
}
