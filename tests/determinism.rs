//! Workspace-level determinism guarantees: the whole reproduction is
//! bit-stable under a seed, across serial/parallel sweeps, and across
//! policies sharing a seed (identical placement).

use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_experiments::runner::{run_all, SimTask};
use dyrs_experiments::scenarios::{hetero_config, homogeneous_config, with_workload};
use dyrs_experiments::table1;
use dyrs_sim::{FailureEvent, GrayFault};
use dyrs_workloads::{sort, swim};
use simkit::{SimDuration, SimTime};

const SEED: u64 = 99;

#[test]
fn table1_is_bit_stable() {
    let a = table1::run(SEED, 0.15);
    let b = table1::run(SEED, 0.15);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.config, rb.config);
        assert_eq!(
            ra.mean_duration_secs.to_bits(),
            rb.mean_duration_secs.to_bits(),
            "{}: durations must be bit-identical",
            ra.config
        );
    }
}

#[test]
fn parallel_sweep_equals_serial_sweep() {
    let mk = || -> Vec<SimTask> {
        (0..6)
            .map(|i| {
                let cfg = hetero_config(MigrationPolicy::Dyrs, SEED + i);
                let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
                let (cfg, jobs) = with_workload(cfg, w);
                SimTask::new(format!("s{i}"), cfg, jobs)
            })
            .collect()
    };
    let serial = run_all(mk(), 1);
    let parallel = run_all(mk(), 6);
    for ((la, ra), (lb, rb)) in serial.iter().zip(&parallel) {
        assert_eq!(la, lb);
        assert_eq!(ra.end_time, rb.end_time);
        assert_eq!(ra.master, rb.master);
        assert_eq!(ra.reads.len(), rb.reads.len());
    }
}

#[test]
fn event_traces_are_bit_stable_across_reruns() {
    // The driver folds every dispatched (time, event) pair into an FNV
    // digest; two runs of the same scenario under the same seed must
    // reproduce it bit-for-bit, or nondeterminism reached the event
    // loop. The failure drill matters most: the restart paths discard
    // and rebuild soft state, which is where iteration-order bugs hide.
    // (Under `--features verify-audit` these same runs also pass the
    // heartbeat invariant auditor.)
    let mk = || -> Vec<SimTask> {
        let plain = |label: &str, policy, hetero: bool| {
            let cfg = if hetero {
                hetero_config(policy, SEED)
            } else {
                homogeneous_config(policy, SEED)
            };
            let w = sort::sort_workload(2 << 30, SimDuration::from_secs(20), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(label, cfg, jobs)
        };
        let drill = {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
            cfg.failures = vec![
                FailureEvent::MasterRestart {
                    at: SimTime::from_secs(6),
                },
                FailureEvent::SlaveRestart {
                    at: SimTime::from_secs(14),
                    node: NodeId(1),
                },
                FailureEvent::NodeDown {
                    at: SimTime::from_secs(20),
                    node: NodeId(2),
                },
                FailureEvent::NodeUp {
                    at: SimTime::from_secs(45),
                    node: NodeId(2),
                },
            ];
            let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new("drill", cfg, jobs)
        };
        let gray_drill = {
            // Every gray-fault flavor at once: the failure detector's
            // suspect/strike/quarantine bookkeeping, the stuck-stream
            // freeze/unfreeze, and flap expansion must all replay
            // identically under a seed.
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
            cfg.gray_faults = vec![
                GrayFault::DiskDegrade {
                    at: SimTime::from_secs(2),
                    node: NodeId(3),
                    factor_milli: 100,
                },
                GrayFault::HeartbeatLoss {
                    at: SimTime::from_secs(4),
                    node: NodeId(1),
                    until: SimTime::from_secs(12),
                },
                GrayFault::StuckStreams {
                    at: SimTime::from_secs(5),
                    node: NodeId(4),
                    until: SimTime::from_secs(40),
                },
                GrayFault::Flap {
                    at: SimTime::from_secs(8),
                    node: NodeId(5),
                    downtime: SimDuration::from_secs(3),
                    times: 2,
                    period: SimDuration::from_secs(10),
                },
                GrayFault::DiskRestore {
                    at: SimTime::from_secs(30),
                    node: NodeId(3),
                },
            ];
            let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new("gray-drill", cfg, jobs)
        };
        vec![
            plain("dyrs-hetero", MigrationPolicy::Dyrs, true),
            plain("dyrs-homog", MigrationPolicy::Dyrs, false),
            plain("disabled", MigrationPolicy::Disabled, true),
            drill,
            gray_drill,
        ]
    };
    let first = run_all(mk(), 1);
    let second = run_all(mk(), 1);
    for ((label, a), (_, b)) in first.iter().zip(&second) {
        assert_ne!(a.trace_digest, 0, "{label}: digest must be populated");
        assert_eq!(
            a.trace_digest, b.trace_digest,
            "{label}: same seed must replay the identical event stream"
        );
    }
    // Distinct scenarios must not collide — otherwise the digest is not
    // actually sensitive to the event stream.
    let mut digests: Vec<u64> = first.iter().map(|(_, r)| r.trace_digest).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), first.len(), "scenario digests collided");
}

#[test]
fn scheduler_engines_replay_identical_event_streams() {
    // Every Algorithm 1 engine must be decision-identical to the
    // reference full rescan — same winners, same bind order, same event
    // stream — not merely similar outcomes. The failure drill is the
    // hard case: restarts reset the dirty-set bookkeeping and fail-stop
    // cycles flip candidacy mid-queue. The sharded engine runs with
    // eight range shards and a tight cascade ceiling, so the K-way
    // merge, the cross-shard trajectory lookups, and the
    // ceiling-triggered fallback rescan are all in play.
    use dyrs::{SchedEngine, SchedulerConfig};
    let mk = |sched: SchedulerConfig| -> Vec<SimTask> {
        let plain = {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
            cfg.dyrs.scheduler = sched;
            let w = sort::sort_workload(2 << 30, SimDuration::from_secs(20), 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new("plain", cfg, jobs)
        };
        let drill = {
            let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
            cfg.dyrs.scheduler = sched;
            cfg.failures = vec![
                FailureEvent::MasterRestart {
                    at: SimTime::from_secs(6),
                },
                FailureEvent::NodeDown {
                    at: SimTime::from_secs(14),
                    node: NodeId(2),
                },
                FailureEvent::NodeUp {
                    at: SimTime::from_secs(40),
                    node: NodeId(2),
                },
            ];
            let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new("drill", cfg, jobs)
        };
        vec![plain, drill]
    };
    let refr = run_all(
        mk(SchedulerConfig {
            engine: SchedEngine::Reference,
            ..SchedulerConfig::default()
        }),
        1,
    );
    let others = [
        SchedulerConfig {
            engine: SchedEngine::Incremental,
            ..SchedulerConfig::default()
        },
        SchedulerConfig {
            engine: SchedEngine::Sharded,
            ..SchedulerConfig::default()
        },
        SchedulerConfig {
            engine: SchedEngine::Sharded,
            shards: 8,
            cascade_ceiling: 0.05,
            ..SchedulerConfig::default()
        },
    ];
    for sched in others {
        let got = run_all(mk(sched), 1);
        for ((la, a), (lb, b)) in got.iter().zip(&refr) {
            assert_eq!(la, lb);
            assert_eq!(
                a.trace_digest, b.trace_digest,
                "{la}: engine {:?} (shards {}, ceiling {}) diverged from \
                 the reference pass",
                sched.engine, sched.shards, sched.cascade_ceiling
            );
            assert_eq!(a.end_time, b.end_time, "{la}: end time");
            assert_eq!(a.master, b.master, "{la}: master stats");
        }
    }
}

#[test]
fn batched_heartbeats_preserve_the_quiet_event_stream() {
    // Batched detector processing moves the failure-detector sweep from
    // every heartbeat arrival to the retarget tick. On a healthy cluster
    // the sweep never finds anything, so batching must be invisible: the
    // same events, the same end time, the same master stats. And under
    // gray faults — where batching legitimately shifts *detection*
    // timing — a batched run must still replay itself bit-for-bit.
    let run = |batch: bool, gray: bool, seed: u64| {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, seed);
        cfg.batch_heartbeats = batch;
        if gray {
            cfg.gray_faults = vec![
                GrayFault::HeartbeatLoss {
                    at: SimTime::from_secs(4),
                    node: NodeId(1),
                    until: SimTime::from_secs(12),
                },
                GrayFault::StuckStreams {
                    at: SimTime::from_secs(5),
                    node: NodeId(4),
                    until: SimTime::from_secs(40),
                },
            ];
        }
        let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
        let (cfg, jobs) = with_workload(cfg, w);
        dyrs_sim::Simulation::new(cfg, jobs).run()
    };
    let quiet = run(false, false, SEED);
    let batched = run(true, false, SEED);
    assert_eq!(
        quiet.trace_digest, batched.trace_digest,
        "batched heartbeats changed a healthy run's event stream"
    );
    assert_eq!(quiet.end_time, batched.end_time);
    assert_eq!(quiet.master, batched.master);
    let gray_a = run(true, true, SEED);
    let gray_b = run(true, true, SEED);
    assert_eq!(
        gray_a.trace_digest, gray_b.trace_digest,
        "a batched gray-fault run must replay bit-identically"
    );
}

#[test]
fn trace_exports_are_byte_identical_across_reruns() {
    // The observability exports are part of the determinism contract:
    // two same-seed runs must render byte-identical spans.jsonl,
    // metrics.jsonl, provenance.jsonl and trace.json — any wall-clock
    // stamp, hash-order iteration, or f64 formatting instability in the
    // recorder would show up here. The failure drill exercises the abort
    // paths (restart causes) too.
    let run = || {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
        cfg.failures = vec![
            FailureEvent::MasterRestart {
                at: SimTime::from_secs(6),
            },
            FailureEvent::SlaveRestart {
                at: SimTime::from_secs(14),
                node: NodeId(1),
            },
        ];
        cfg.gray_faults = vec![
            GrayFault::HeartbeatLoss {
                at: SimTime::from_secs(3),
                node: NodeId(2),
                until: SimTime::from_secs(10),
            },
            GrayFault::StuckStreams {
                at: SimTime::from_secs(4),
                node: NodeId(5),
                until: SimTime::from_secs(35),
            },
        ];
        let w = sort::sort_workload(2 << 30, SimDuration::from_secs(10), 0);
        let (cfg, jobs) = with_workload(cfg, w);
        dyrs_sim::Simulation::new(cfg, jobs).run().obs
    };
    let (a, b) = (run(), run());
    assert_eq!(a.spans_jsonl(), b.spans_jsonl());
    assert_eq!(a.metrics_jsonl(), b.metrics_jsonl());
    assert_eq!(a.provenance_jsonl(), b.provenance_jsonl());
    assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    if a.enabled {
        assert!(
            !a.events.is_empty() && !a.provenance.is_empty(),
            "an obs-enabled drill run must record spans and provenance"
        );
    }
}

#[test]
fn scraping_is_invisible_to_determinism() {
    // Admin-plane scrapes are pure reads layered on top of the event
    // stream: a run answering periodic StatsRequests must replay the
    // exact same events, end at the same instant, and render
    // byte-identical exports as the quiet run of the identical scenario.
    // The failure drill makes this the hard case — a scrape that so much
    // as bumps a counter or opens a span would diverge here.
    let run = |scrape: Option<SimDuration>| {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
        cfg.scrape_interval = scrape;
        cfg.failures = vec![
            FailureEvent::MasterRestart {
                at: SimTime::from_secs(6),
            },
            FailureEvent::SlaveRestart {
                at: SimTime::from_secs(14),
                node: NodeId(1),
            },
        ];
        let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
        let (cfg, jobs) = with_workload(cfg, w);
        dyrs_sim::Simulation::new(cfg, jobs).run()
    };
    let quiet = run(None);
    let scraped = run(Some(SimDuration::from_secs(1)));
    assert_eq!(quiet.scrapes, 0);
    assert!(
        scraped.scrapes > 0,
        "the scraped run must actually have scraped"
    );
    assert_eq!(
        quiet.trace_digest, scraped.trace_digest,
        "interleaved scrapes changed the event stream"
    );
    assert_eq!(quiet.end_time, scraped.end_time);
    assert_eq!(quiet.events_processed, scraped.events_processed);
    assert_eq!(quiet.master, scraped.master);
    assert_eq!(quiet.wire_frames, scraped.wire_frames);
    assert_eq!(quiet.obs.spans_jsonl(), scraped.obs.spans_jsonl());
    assert_eq!(quiet.obs.metrics_jsonl(), scraped.obs.metrics_jsonl());
    assert_eq!(quiet.obs.provenance_jsonl(), scraped.obs.provenance_jsonl());
    assert_eq!(
        quiet.obs.chrome_trace_json(),
        scraped.obs.chrome_trace_json()
    );
}

#[test]
fn membership_churn_preserves_placement_and_loses_nothing() {
    // Acceptance pin for the membership plane: a same-seed run with an
    // interleaved master checkpoint+restart and one drain/join cycle
    // must (1) replay bit-identically against itself — including the
    // terminal placement of every block — and (2) lose nothing versus
    // the quiet run: the same set of blocks reaches memory and not a
    // single migration dies to `retries-exhausted`, because a drain
    // re-targets work without burning retry budget.
    use dyrs_obs::SpanState;
    use std::collections::{BTreeMap, BTreeSet};
    let run = |churn: bool| {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
        if churn {
            cfg.failures = vec![
                FailureEvent::CheckpointRestart {
                    at: SimTime::from_secs(5),
                },
                FailureEvent::DrainNode {
                    at: SimTime::from_secs(8),
                    node: NodeId(3),
                },
                FailureEvent::JoinNode {
                    at: SimTime::from_secs(30),
                    node: NodeId(3),
                },
            ];
        }
        let w = sort::sort_workload(2 << 30, SimDuration::ZERO, 0);
        let (cfg, jobs) = with_workload(cfg, w);
        dyrs_sim::Simulation::new(cfg, jobs).run()
    };
    let placement = |r: &dyrs_sim::SimResult| -> BTreeMap<u64, u32> {
        r.obs
            .events
            .iter()
            .filter(|e| e.state == SpanState::Finished)
            .map(|e| (e.block, e.node.expect("finished span names its node")))
            .collect()
    };
    let quiet = run(false);
    let churned = run(true);
    let churned2 = run(true);

    // (1) The churned scenario is itself deterministic, down to where
    // every block landed.
    assert_eq!(churned.trace_digest, churned2.trace_digest);
    assert_eq!(placement(&churned), placement(&churned2));

    // (2) Nothing is lost to the churn: same blocks land in memory, and
    // the drain never exhausts a retry budget.
    let blocks = |p: &BTreeMap<u64, u32>| -> BTreeSet<u64> { p.keys().copied().collect() };
    assert_eq!(
        blocks(&placement(&quiet)),
        blocks(&placement(&churned)),
        "membership churn lost (or invented) migrated blocks"
    );
    assert_eq!(
        churned.obs.counter("detector.retries_exhausted"),
        0,
        "a quiet drain/join cycle must not burn retry budget"
    );

    // The churn actually happened: one checkpoint, one drain (with its
    // decommission once the queues emptied), one join.
    assert_eq!(churned.obs.counter("membership.checkpoints"), 1);
    assert_eq!(churned.obs.counter("membership.drains"), 1);
    assert_eq!(churned.obs.counter("membership.decommissions"), 1);
    assert_eq!(churned.obs.counter("membership.joins"), 1);
}

#[test]
fn workload_generation_is_stable() {
    let p = swim::SwimParams::default();
    let a = swim::generate(&p, SEED);
    let b = swim::generate(&p, SEED);
    assert_eq!(a.files, b.files);
    assert_eq!(a.jobs, b.jobs);
}

#[test]
fn policies_share_identical_placement() {
    // Same seed ⇒ same file layout, so cross-policy comparisons are
    // apples-to-apples: verify HDFS and DYRS saw identical replica sets
    // by checking both read every block exactly once from somewhere.
    let runs: Vec<_> = [MigrationPolicy::Disabled, MigrationPolicy::Dyrs]
        .into_iter()
        .map(|p| {
            let cfg = hetero_config(p, SEED);
            let w = sort::sort_workload(4 << 30, SimDuration::ZERO, 0);
            let (cfg, jobs) = with_workload(cfg, w);
            SimTask::new(p.name(), cfg, jobs)
        })
        .collect();
    let out = run_all(runs, 0);
    let blocks = |r: &dyrs_sim::SimResult| {
        let mut b: Vec<_> = r.reads.iter().map(|rd| rd.block).collect();
        b.sort();
        b.dedup();
        b
    };
    assert_eq!(blocks(&out[0].1), blocks(&out[1].1));
}

#[test]
fn wire_frames_are_byte_pinned() {
    // The wire format is part of the determinism contract: the exact
    // bytes of every protocol frame are pinned here, so any codec change
    // — field order, width, endianness, a new default — fails this test
    // instead of silently breaking cross-version interop. Bumping the
    // pinned values is the explicit act of changing the protocol.
    use dyrs::master::{BlockRequest, JobHint};
    use dyrs::slave::HeartbeatReport;
    use dyrs::types::{JobRef, Migration, MigrationId};
    use dyrs::EvictionMode;
    use dyrs_dfs::{BlockId, JobId};
    use dyrs_net::frame::encode_frame;
    use dyrs_net::{Message, Role, StatsScope, PROTOCOL_VERSION};
    use dyrs_obs::{FlightEntry, FlightRecord, GaugeSample, StatsSnapshot};

    // One canonical message per wire tag, with fixed payloads.
    let canonical: Vec<Message> = vec![
        Message::Hello {
            role: Role::Slave,
            node: 3,
            min_version: 1,
            max_version: 1,
        },
        Message::Welcome { version: 1 },
        Message::Reject {
            reason: "no".into(),
        },
        Message::Heartbeat {
            node: NodeId(2),
            report: HeartbeatReport {
                secs_per_byte: 1.5e-8,
                queued_bytes: 512 << 20,
                queue_space: 4,
            },
            at: SimTime::from_secs(30),
        },
        Message::MigrationComplete {
            node: NodeId(2),
            block: BlockId(9),
        },
        Message::Evicted {
            node: NodeId(2),
            block: BlockId(9),
        },
        Message::Bye { sent: 17 },
        Message::Bind {
            migrations: vec![Migration {
                id: MigrationId(5),
                block: BlockId(9),
                bytes: 256 << 20,
                jobs: vec![JobRef {
                    job: JobId(1),
                    eviction: EvictionMode::Explicit,
                }],
                replicas: vec![NodeId(2), NodeId(4)],
                attempt: 0,
                dest_tier: 1,
            }],
        },
        Message::AddRef {
            block: BlockId(9),
            job: JobRef {
                job: JobId(1),
                eviction: EvictionMode::Implicit,
            },
        },
        Message::Revoke { block: BlockId(7) },
        Message::EvictJob { job: JobId(1) },
        Message::Shutdown { sent: 23 },
        Message::RequestMigration {
            job: JobId(1),
            blocks: vec![BlockRequest {
                block: BlockId(9),
                bytes: 256 << 20,
                replicas: vec![NodeId(2)],
            }],
            eviction: EvictionMode::Explicit,
            hint: JobHint {
                expected_launch: SimTime::from_secs(10),
                total_bytes: 1 << 30,
            },
        },
        Message::ReadNotify {
            block: BlockId(9),
            job: JobId(1),
        },
        Message::EvictJobRequest { job: JobId(1) },
        Message::StatsRequest {
            scope: StatsScope::Node(2),
        },
        Message::StatsReply {
            scope: StatsScope::Local,
            snapshot: StatsSnapshot {
                at: SimTime::from_secs(30),
                enabled: true,
                counters: vec![("span.finished".into(), 4)],
                gauges: vec![GaugeSample {
                    name: "sched.pending_depth".into(),
                    key: 0,
                    value: 6.0,
                    at: SimTime::from_secs(30),
                }],
                open_spans: vec![("pending".into(), 6)],
                top_winners: vec![(2, 3)],
            },
        },
        Message::FlightDump {
            scope: StatsScope::LocalFlight,
            record: FlightRecord {
                reason: "node-quarantined".into(),
                node: Some(2),
                at: SimTime::from_secs(30),
                dropped: 1,
                entries: vec![FlightEntry {
                    at: SimTime::from_secs(29),
                    migration: 5,
                    block: 9,
                    state: "aborted".into(),
                    node: Some(2),
                    cause: "node-suspect".into(),
                }],
            },
        },
        Message::JoinRequest { node: 2 },
        Message::DrainNode { node: 2 },
        Message::DecommissionAck {
            node: 2,
            membership: 3,
        },
        Message::CheckpointRequest,
        Message::Checkpoint {
            data: vec![1, 2, 3],
        },
    ];
    let tags: Vec<u8> = canonical.iter().map(Message::tag).collect();
    assert_eq!(tags, (0..23).collect::<Vec<u8>>(), "one message per tag");

    // Two frames pinned byte-for-byte (header: magic "DYRS", version
    // u16 BE, payload length u32 BE; payload: tag byte + fields BE).
    assert_eq!(
        encode_frame(PROTOCOL_VERSION, &Message::Welcome { version: 1 }),
        [b'D', b'Y', b'R', b'S', 0, 2, 0, 0, 0, 3, 1, 0, 1],
    );
    assert_eq!(
        encode_frame(PROTOCOL_VERSION, &Message::Revoke { block: BlockId(7) }),
        [b'D', b'Y', b'R', b'S', 0, 2, 0, 0, 0, 9, 9, 0, 0, 0, 0, 0, 0, 0, 7],
    );

    // And the whole catalog pinned through one digest: FNV-1a over the
    // concatenation of all twenty-three canonical frames.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut total_len = 0usize;
    for msg in &canonical {
        let frame = encode_frame(PROTOCOL_VERSION, msg);
        total_len += frame.len();
        for b in frame {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    // Appending a fresh-tag variant extends the catalog and re-pins this
    // digest (append-only, no version bump — old decoders never see the
    // new tag); any other change to these bytes is a protocol break that
    // must bump PROTOCOL_VERSION.
    assert_eq!(
        (total_len, h),
        (770, 0x7553_C5EB_2C59_AC18),
        "pinned wire bytes changed: this is a protocol break, bump \
         PROTOCOL_VERSION and re-pin"
    );
}

/// The hetero/homog sort scenario used for the legacy-equivalence pins
/// below: byte-for-byte the same construction as `pin_capture` ran on the
/// commit before `crates/tiers` landed.
fn legacy_pin_task(label: &str, hetero: bool) -> SimTask {
    let cfg = if hetero {
        hetero_config(MigrationPolicy::Dyrs, SEED)
    } else {
        homogeneous_config(MigrationPolicy::Dyrs, SEED)
    };
    let w = sort::sort_workload(2 << 30, SimDuration::from_secs(20), 0);
    let (cfg, jobs) = with_workload(cfg, w);
    SimTask::new(label, cfg, jobs)
}

/// Pre-tier trace digest of `legacy_pin_task("hetero", true)`, captured on
/// the commit immediately before the tier subsystem landed.
const PRE_TIER_HETERO_DIGEST: u64 = 0x42E8_CF51_7764_1B05;
/// Pre-tier trace digest of `legacy_pin_task("homog", false)`.
const PRE_TIER_HOMOG_DIGEST: u64 = 0x3CC4_03A5_2390_1B6C;

#[test]
fn two_tier_digests_match_the_pre_tier_pins() {
    // Cross-commit, not merely cross-rerun: these constants were captured
    // on the last commit without crates/tiers, so equality proves the tier
    // generalization left the legacy 2-tier event stream untouched — the
    // strict-superset claim of the tier subsystem.
    let out = run_all(
        vec![
            legacy_pin_task("hetero", true),
            legacy_pin_task("homog", false),
        ],
        1,
    );
    assert_eq!(
        out[0].1.trace_digest, PRE_TIER_HETERO_DIGEST,
        "hetero: legacy event stream changed"
    );
    assert_eq!(
        out[1].1.trace_digest, PRE_TIER_HOMOG_DIGEST,
        "homog: legacy event stream changed"
    );
}

#[test]
fn explicit_two_tier_stack_replays_the_legacy_digest() {
    // `tiers: None` (the synthesized legacy stack) and an explicitly
    // configured 2-tier stack built from the same scalars must be the
    // same simulation, down to the last event.
    let mut explicit = legacy_pin_task("explicit", true);
    for spec in &mut explicit.cfg.cluster.nodes {
        spec.tiers = Some(dyrs::TierStackSpec::legacy(
            spec.mem_capacity,
            spec.membus_bw,
            spec.disk_bw,
            spec.disk_degradation,
        ));
    }
    let out = run_all(vec![legacy_pin_task("implicit", true), explicit], 1);
    assert_eq!(
        out[0].1.trace_digest, out[1].1.trace_digest,
        "explicit legacy() stack must replay the tiers: None event stream"
    );
    assert_eq!(out[1].1.trace_digest, PRE_TIER_HETERO_DIGEST);
}

#[test]
fn three_tier_scenario_runs_end_to_end() {
    // The deeper stack must actually work — jobs complete, evictions
    // demote with attributable causes, per-tier gauges get sampled — and
    // must itself replay bit-identically under the seed (this is the
    // digest-replay check CI's tier-sweep smoke job relies on).
    let mk = || {
        let mut task = legacy_pin_task("3-tier", true);
        for spec in &mut task.cfg.cluster.nodes {
            spec.tiers = Some(dyrs::TierStackSpec::three_tier(
                spec.mem_capacity,
                spec.membus_bw,
                spec.disk_bw,
                spec.disk_degradation,
            ));
        }
        // tight buffer: eviction pressure guarantees the demotion path runs
        task.cfg.mem_limit = Some(512 << 20);
        task
    };
    let out = run_all(vec![mk(), mk()], 1);
    let (a, b) = (&out[0].1, &out[1].1);
    assert_eq!(
        a.trace_digest, b.trace_digest,
        "3-tier run must replay bit-identically"
    );
    assert!(!a.jobs.is_empty() && a.failed_jobs.is_empty());
    // evictions were salvaged by demotion, and are attributable
    assert!(
        a.obs.counter("tier.evict_demote") > 0,
        "pressure must demote on the 3-tier stack"
    );
    assert_eq!(
        a.obs.counter("tier.demotions"),
        a.obs.counter("tier.evict_demote")
    );
    // spans are tier-stamped from the Bound transition onward
    assert!(
        a.obs
            .events
            .iter()
            .any(|e| e.state == dyrs_obs::SpanState::Bound && e.tier.is_some()),
        "bound spans must carry the destination tier"
    );
    // per-tier occupancy/utilization gauges sampled for memory and NVMe
    // (gauge key = node << 8 | tier; node 0 shown here)
    assert!(a.obs.gauge("tier.occupancy_bytes", 0).is_some());
    assert!(a.obs.gauge("tier.occupancy_bytes", 1).is_some());
    assert!(a.obs.gauge("tier.utilization", 1).is_some());
    // and the 3-tier event stream is genuinely different from legacy
    assert_ne!(a.trace_digest, PRE_TIER_HETERO_DIGEST);
}
