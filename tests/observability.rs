//! Driver-level observability guarantees: every migration the pipeline
//! touches is covered by exactly one lifecycle span with legal
//! transitions, the metrics registry agrees with the component counters,
//! and Algorithm 1 placements are explainable from provenance records
//! alone. Runs identically under `--features verify-audit`.

#![cfg(feature = "obs")]

use dyrs::obs::SpanState;
use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_experiments::scenarios::{hetero_config, with_workload};
use dyrs_sim::{FailureEvent, FileSpec, SimConfig, Simulation};
use dyrs_workloads::sort;
use simkit::{SimDuration, SimTime};

const SEED: u64 = 99;
const BLOCK: u64 = 256 << 20;

/// A quickstart-shaped run: one map-only job whose lead-time covers the
/// whole input, so every migration both starts and reaches a terminal
/// state before the run ends.
fn draining_run() -> dyrs_sim::SimResult {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, SEED);
    cfg.files.push(FileSpec::new("f", 14 * BLOCK));
    let job = JobSpec::map_only(JobId(0), "scan", SimTime::ZERO, vec!["f".into()]);
    Simulation::new(cfg, vec![job]).run()
}

/// A messier run: restarts plus a node failure, exercising the abort and
/// eviction transitions.
fn drill_run() -> dyrs_sim::SimResult {
    let mut cfg = hetero_config(MigrationPolicy::Dyrs, SEED);
    // The restarts fire while the migration wave is still in flight: the
    // slave restart catches node 6's bound queue (it pulls on its first
    // staggered heartbeat), the master restart then wipes what is still
    // pending. 32 blocks over the 7-node testbed keeps both phases busy
    // at t=1–2 s.
    cfg.failures = vec![
        FailureEvent::SlaveRestart {
            at: SimTime::from_secs(1),
            node: NodeId(6),
        },
        FailureEvent::MasterRestart {
            at: SimTime::from_secs(2),
        },
        FailureEvent::NodeDown {
            at: SimTime::from_secs(20),
            node: NodeId(2),
        },
        FailureEvent::NodeUp {
            at: SimTime::from_secs(45),
            node: NodeId(2),
        },
    ];
    let w = sort::sort_workload(8 << 30, SimDuration::from_secs(20), 0);
    let (cfg, jobs) = with_workload(cfg, w);
    Simulation::new(cfg, jobs).run()
}

/// Check span well-formedness for a report: every span opens with
/// `pending`, states only move forward, and at most one terminal event
/// exists — as the last event. Returns (spans, terminal span count).
fn assert_spans_well_formed(report: &dyrs_obs::ObsReport) -> (usize, usize) {
    let order = |s: SpanState| match s {
        SpanState::Pending => 0,
        SpanState::Targeted => 1,
        SpanState::Bound => 2,
        SpanState::Started => 3,
        SpanState::Finished | SpanState::Aborted | SpanState::Evicted => 4,
    };
    let spans = report.spans();
    let mut terminal = 0;
    for (id, events) in &spans {
        assert_eq!(
            events[0].state,
            SpanState::Pending,
            "span {id} must open with pending"
        );
        // Targeted may repeat (periodic Algorithm 1 passes re-point the
        // migration); everything else moves strictly forward.
        for w in events.windows(2) {
            assert!(
                order(w[1].state) >= order(w[0].state),
                "span {id}: illegal transition {:?} -> {:?}",
                w[0].state,
                w[1].state
            );
        }
        let terminals = events.iter().filter(|e| e.state.is_terminal()).count();
        assert!(terminals <= 1, "span {id} has {terminals} terminal events");
        if terminals == 1 {
            assert!(
                events.last().expect("nonempty").state.is_terminal(),
                "span {id}: terminal event must be last"
            );
            terminal += 1;
        }
        // Spans are self-contained: block and size are stamped on every
        // event, and they never change mid-span.
        assert!(events.iter().all(|e| e.block == events[0].block));
        assert!(events.iter().all(|e| e.bytes == events[0].bytes));
    }
    (spans.len(), terminal)
}

#[test]
fn every_migration_has_exactly_one_terminal_span() {
    let r = draining_run();
    assert!(r.obs.enabled, "workspace default enables the obs feature");
    let (total, terminal) = assert_spans_well_formed(&r.obs);
    assert_eq!(total as u64, r.master.requested_blocks);
    assert_eq!(
        terminal, total,
        "a draining run must close every span terminally"
    );
    // Terminal counters partition the spans.
    let by_counter = r.obs.counter("span.finished")
        + r.obs.counter("span.aborted")
        + r.obs.counter("span.evicted");
    assert_eq!(by_counter, terminal as u64);
    assert!(r.obs.counter("span.finished") > 0);
}

#[test]
fn failure_drill_spans_stay_well_formed() {
    let r = drill_run();
    let (total, _) = assert_spans_well_formed(&r.obs);
    assert!(total > 0);
    // Restarts leave abort spans behind, never dangling pendings with a
    // terminal-looking cause.
    let aborted = r.obs.counter("span.aborted");
    assert!(
        aborted > 0,
        "master + slave restarts must abort in-flight migrations"
    );
}

#[test]
fn registry_counters_match_component_stats() {
    let r = draining_run();
    // The slave stats are the single source of truth for migration
    // roll-ups (NodeReport no longer duplicates them); the span counters
    // must agree with them exactly. `SlaveStats::completed` counts both
    // buffered completions (span `finished`) and completions whose
    // readers all went away mid-flight (span `evicted`).
    let completed: u64 = r.nodes.iter().map(|n| n.slave.completed).sum();
    assert_eq!(
        r.obs.counter("span.finished") + r.obs.counter("span.evicted"),
        completed
    );
    assert_eq!(r.obs.counter("span.finished"), r.master.completed);
    assert_eq!(r.obs.counter("span.pending"), r.master.requested_blocks);
    // The duration histogram saw every finished migration.
    let hist = r
        .obs
        .histogram("migration.duration_secs")
        .expect("finished migrations populate the histogram");
    assert_eq!(hist.total(), r.obs.counter("span.finished"));
    // Heartbeat gauges exist for every node.
    for n in &r.nodes {
        let key = u64::from(n.node.0);
        for name in [
            "node.queue_backlog_bytes",
            "node.buffer_bytes",
            "node.disk_utilization",
        ] {
            assert!(
                r.obs.gauge(name, key).is_some(),
                "missing {name} series for node {key}"
            );
        }
    }
    // The job's lead-time covered the whole input, so the ready-fraction
    // gauge must report (close to) 1.0 at launch.
    let lead = r
        .obs
        .gauge("job.lead_time_ready_fraction", 0)
        .expect("gauge recorded at job launch");
    let (_, frac) = lead.points()[0];
    assert!(
        frac > 0.9,
        "lead-time covered the input, got ready fraction {frac}"
    );
}

#[test]
fn driver_provenance_explains_placements() {
    let r = draining_run();
    assert!(
        !r.obs.provenance.is_empty(),
        "retarget passes must record provenance"
    );
    for rec in &r.obs.provenance {
        if rec.candidates.is_empty() {
            assert_eq!(rec.winner, None, "no candidates, no winner");
            continue;
        }
        let winner = rec.winner.expect("candidates imply a winner");
        let best = rec
            .candidates
            .iter()
            .min_by(|a, b| {
                a.est_finish_secs
                    .total_cmp(&b.est_finish_secs)
                    .then(a.rank.cmp(&b.rank))
            })
            .expect("nonempty");
        // Algorithm 1: the winner minimizes estimated finish time, with
        // placement rank as the deterministic tie-break — reconstructable
        // from the record alone.
        assert_eq!(
            winner, best.node,
            "pass {} migration {}: winner {} but argmin(score, rank) is {}",
            rec.pass, rec.migration, winner, best.node
        );
        // Passes and timestamps are monotone (recorder-stamped).
        assert!(rec.candidates.iter().any(|c| c.node == winner));
    }
    // Provenance pass indices never decrease across the run.
    assert!(r.obs.provenance.windows(2).all(|w| w[0].pass <= w[1].pass));
}
