//! Loopback membership soak: a drain/join storm interleaved with master
//! checkpoint+restarts and gray faults, driven through the
//! encode→frame→decode wire seam, must replay bit-identically under a
//! seed and strand no migration — every span reaches a terminal state
//! through the protocol, none are mopped up by the run-end sweep.
//!
//! The TCP half of the soak (a real localhost cluster churned by live
//! admin commands) lives in `crates/net/tests/membership_soak.rs`.

use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_experiments::scenarios::{hetero_config, with_workload};
use dyrs_sim::config::WireMode;
use dyrs_sim::{FailureEvent, GrayFault};
use dyrs_workloads::sort;
use simkit::{SimDuration, SimTime};

#[test]
fn loopback_membership_storm_replays_identically() {
    let run = || {
        let mut cfg = hetero_config(MigrationPolicy::Dyrs, 4242);
        cfg.wire = WireMode::Loopback;
        cfg.failures = vec![
            FailureEvent::CheckpointRestart {
                at: SimTime::from_secs(4),
            },
            FailureEvent::DrainNode {
                at: SimTime::from_secs(6),
                node: NodeId(2),
            },
            FailureEvent::JoinNode {
                at: SimTime::from_secs(20),
                node: NodeId(2),
            },
            FailureEvent::DrainNode {
                at: SimTime::from_secs(26),
                node: NodeId(5),
            },
            FailureEvent::CheckpointRestart {
                at: SimTime::from_secs(28),
            },
            FailureEvent::JoinNode {
                at: SimTime::from_secs(40),
                node: NodeId(5),
            },
        ];
        cfg.gray_faults = vec![
            GrayFault::HeartbeatLoss {
                at: SimTime::from_secs(3),
                node: NodeId(1),
                until: SimTime::from_secs(10),
            },
            GrayFault::DiskDegrade {
                at: SimTime::from_secs(5),
                node: NodeId(4),
                factor_milli: 200,
            },
            GrayFault::DiskRestore {
                at: SimTime::from_secs(25),
                node: NodeId(4),
            },
        ];
        let w = sort::sort_workload(2 << 30, SimDuration::from_secs(10), 0);
        let (cfg, jobs) = with_workload(cfg, w);
        dyrs_sim::Simulation::new(cfg, jobs).run()
    };
    let a = run();
    let b = run();

    // Bit-identical replay, through the wire seam, under the storm.
    assert_ne!(a.trace_digest, 0);
    assert_eq!(
        a.trace_digest, b.trace_digest,
        "membership storm broke seeded determinism"
    );
    assert_eq!(a.wire_frames, b.wire_frames, "frame accounting diverged");
    assert_eq!(a.obs.spans_jsonl(), b.obs.spans_jsonl());

    // The storm actually happened.
    assert_eq!(a.obs.counter("membership.drains"), 2);
    assert_eq!(a.obs.counter("membership.joins"), 2);
    assert_eq!(a.obs.counter("membership.checkpoints"), 2);
    assert_eq!(a.obs.counter("membership.decommissions"), 2);

    // Zero stranded migrations: every span reached its terminal state
    // through the protocol — none were swept up by the run-end pass.
    for (mig, events) in a.obs.spans() {
        let last = events.last().expect("span has events");
        assert!(
            last.state.is_terminal(),
            "migration {mig} left open: {:?}",
            last.state
        );
        assert_ne!(
            last.cause,
            dyrs_obs::cause::RUN_END,
            "migration {mig} was stranded (closed only by run-end)"
        );
    }
}
