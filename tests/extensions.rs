//! Workspace-level tests for the implemented future-work extensions and
//! the sensitivity analysis — the parts of this repository that go
//! *beyond* the paper must be as trustworthy as the reproduction itself.

use dyrs_experiments::{iterative, policies, replay, sensitivity};

const SEED: u64 = 20190520;

/// §III future work: the alternative migration orders complete the SWIM
/// workload and expose the expected trade-off (SJF favors the majority
/// small-job class without tanking the mean).
#[test]
fn migration_order_study() {
    let p = policies::run(SEED, 0.3);
    let fifo = p.row("FIFO");
    let sjf = p.row("SJF");
    assert!(sjf.small_job_secs <= fifo.small_job_secs * 1.05);
    assert!(sjf.mean_job_secs <= fifo.mean_job_secs * 1.25);
    assert!(
        sjf.missed_reads <= fifo.missed_reads,
        "SJF wastes less intent"
    );
}

/// §I motivation measured: DYRS collapses the cold first-iteration
/// penalty of iterative analytics.
#[test]
fn iterative_motivation() {
    let s = iterative::run(SEED);
    let hdfs = s.get("logreg", "HDFS").penalty();
    let dyrs = s.get("logreg", "DYRS").penalty();
    assert!(hdfs > 3.0, "cold LogReg penalty {hdfs:.1}x");
    assert!(dyrs < hdfs * 0.7, "DYRS must collapse it: {dyrs:.1}x");
}

/// §II closed loop: DYRS keeps a solid speedup under replayed
/// Google-trace background conditions.
#[test]
fn google_conditions_replay() {
    let r = replay::run(SEED, 0.3);
    let dyrs = r.row("DYRS").speedup_vs_hdfs.expect("speedup");
    assert!(dyrs > 0.1, "replayed-conditions DYRS speedup {dyrs:.2}");
    let mean_bg = r.background_means.iter().sum::<f64>() / r.background_means.len() as f64;
    assert!(
        mean_bg < 0.25,
        "background stays production-light: {mean_bg:.2}"
    );
}

/// The reproduction's conclusions survive every modeled perturbation.
#[test]
fn sensitivity_conclusions_robust() {
    let s = sensitivity::run(SEED, 0.25);
    for v in &s.variants {
        assert!(
            v.conclusions_hold(),
            "{}: DYRS {:.2} RAM {:.2} Ignem {:.2}",
            v.name,
            v.dyrs,
            v.ram,
            v.ignem
        );
    }
    // and the magnitude-vs-disk-busyness story: real spill writes shrink
    // the DYRS benefit relative to the clean baseline
    let base = s.variant("baseline").dyrs;
    let spill = s.variant("spill-writes-real").dyrs;
    assert!(spill < base + 0.02, "spill {spill:.2} vs base {base:.2}");
}
