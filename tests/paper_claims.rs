//! Workspace-level integration tests: the paper's headline claims, each
//! exercised through the full stack (workload generator → simulator →
//! experiment harness). These are the "did we reproduce the paper" tests;
//! per-module shape tests live next to each experiment.

use dyrs_experiments::{ablations, fig02, fig03, fig04, fig06, fig08, fig09, table1, table2};

const SEED: u64 = 20190520;

/// §I / Table I: "Jobs in a trace-based workload experience a speedup of
/// 33% on average" and Ignem is slower than plain HDFS.
#[test]
fn swim_headline_speedups() {
    let t = table1::run(SEED, 0.5);
    let dyrs = t.speedup("DYRS");
    let ram = t.speedup("HDFS-Inputs-in-RAM");
    let ignem = t.speedup("Ignem");
    assert!(
        (0.15..=0.65).contains(&dyrs),
        "DYRS SWIM speedup {dyrs:.2} (paper 0.33)"
    );
    assert!(
        ram > dyrs,
        "the in-RAM bound must dominate: {ram:.2} vs {dyrs:.2}"
    );
    assert!(ignem < 0.05, "Ignem must not meaningfully win: {ignem:.2}");
    assert!(
        dyrs / ram > 0.5,
        "DYRS should capture most of the bound ({:.2})",
        dyrs / ram
    );
}

/// §I / Fig. 4: "DYRS accelerates Hive queries by up to 48%, and by 36%
/// on average", with every query faster and Ignem trailing far behind.
#[test]
fn hive_headline_speedups() {
    let f = fig04::run(SEED, 0.35);
    let mean = f.mean_speedup("DYRS");
    let (best_q, best) = f.best_speedup("DYRS");
    assert!(
        (0.25..=0.70).contains(&mean),
        "DYRS mean Hive speedup {mean:.2} (paper 0.36)"
    );
    assert!(
        best >= mean && best <= 0.75,
        "best query {best_q} at {best:.2} (paper: 0.48)"
    );
    for q in &f.queries {
        assert!(
            f.normalized(q, "DYRS") < 0.95,
            "{q}: every query must speed up"
        );
    }
    assert!(
        f.mean_speedup("Ignem") < mean - 0.2,
        "Ignem must trail DYRS badly"
    );
}

/// §V-E2 / Fig. 6: mapper tasks much faster under DYRS (paper: 1.8x).
#[test]
fn mapper_speedup() {
    let f = fig06::run(SEED, 0.5);
    let ratio = f.dyrs_map_ratio();
    assert!(
        (1.3..=8.0).contains(&ratio),
        "HDFS/DYRS mean map-task ratio {ratio:.2} (paper 1.8x)"
    );
}

/// §II-C1 / Fig. 2: 81% of jobs have lead-time ≥ read-time, mean lead 8.8s.
#[test]
fn google_lead_time_analysis() {
    let f = fig02::run(SEED, 100_000);
    assert!((0.78..=0.84).contains(&f.migratable_fraction));
    assert!((7.5..=10.0).contains(&f.mean_lead_secs));
}

/// §II-C2 / Fig. 3: 80% of utilization samples under 4%, mean ~3.1%.
#[test]
fn google_utilization_analysis() {
    let f = fig03::run(SEED, 40);
    assert!((0.70..=0.90).contains(&f.under_4pct));
    assert!((0.015..=0.05).contains(&f.mean));
}

/// §V-F1 / Fig. 8: with a handicapped node, DYRS redirects load away
/// while Ignem keeps loading it uniformly.
#[test]
fn heterogeneity_adaptation() {
    let f = fig08::run(SEED, 14);
    assert!(f.get("DYRS", true).slow_node_share() < f.get("Ignem", true).slow_node_share());
}

/// §V-F2 / Table II: equal total interference ⇒ equal Sort runtime.
#[test]
fn interference_invariance() {
    let t = table2::run(SEED, 10);
    let a = t.runtime("9a");
    let d = t.runtime("9d");
    let e = t.runtime("9e");
    let spread = (a.max(d).max(e) - a.min(d).min(e)) / a;
    assert!(
        spread < 0.25,
        "full-duty patterns must roughly coincide: a={a:.1} d={d:.1} e={e:.1}"
    );
}

/// §V-F2 / Fig. 9: the migration-time estimate tracks interference and
/// recovers when it stops.
#[test]
fn estimate_tracking() {
    let f = fig09::run(SEED, 10);
    let s = f.pattern("9c");
    let on = fig09::window_mean(&s.node1, 8.0, 20.0);
    let off = fig09::window_mean(&s.node1, 28.0, 40.0);
    assert!(
        on > off,
        "estimate must fall in the off window: {on:.1} vs {off:.1}"
    );
}

/// DESIGN.md ablations: each DYRS mechanism pulls its weight.
#[test]
fn ablations_hold() {
    let b = ablations::binding(SEED, 10);
    assert!(b.row("DYRS").job_secs < b.row("Ignem").job_secs);
    let e = ablations::eviction(SEED, 10);
    assert!(e.row("implicit").peak_buffer_bytes <= e.row("explicit").peak_buffer_bytes);
}
