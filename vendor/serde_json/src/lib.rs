//! Offline stand-in for `serde_json`.
//!
//! The workspace's stub `serde` generates no serialization code, so this
//! crate cannot produce or parse real JSON. It preserves the call surface
//! the workspace uses — `json!`, `to_string_pretty`, `from_str`, `Value` —
//! with honest degraded behaviour: serialization yields `"null"`,
//! deserialization always fails with a descriptive error. Both paths are
//! only reachable from the experiment binaries, never from tests.

use std::fmt;

/// Stand-in for `serde_json::Value`; only the `Null` case is constructible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Value {
    /// The only value the offline stub produces.
    #[default]
    Null,
}

/// Error type for the stub's (always-failing) deserialization path.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// Stub serialization: every value renders as `null`.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("null".to_owned())
}

/// Stub serialization: every value renders as `null`.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("null".to_owned())
}

/// Stub deserialization: always fails (the offline stand-in cannot parse).
pub fn from_str<T: serde::DeserializeOwned>(_s: &str) -> Result<T, Error> {
    Err(Error {
        msg: "offline serde_json stand-in cannot deserialize; \
              restore the real serde_json dependency to load JSON input",
    })
}

/// Stub `json!`: evaluates (and discards) the field expressions of a flat
/// object literal, or swallows arbitrary tokens, yielding [`Value::Null`].
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        $(let _ = &$val;)*
        $crate::Value::Null
    }};
    ($($tokens:tt)*) => {
        $crate::Value::Null
    };
}
