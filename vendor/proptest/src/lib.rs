//! Offline stand-in for `proptest`.
//!
//! A deterministic, sampling-based property-testing core implementing the
//! API surface this workspace uses: the `proptest!` / `prop_assert*`
//! macros, range/tuple/`collection::vec`/`sample::subsequence`/`any`
//! strategies and `ProptestConfig::with_cases`. Differences from the real
//! crate:
//!
//! * cases are drawn from a fixed per-test seed (derived from the test's
//!   module path and name), so runs are reproducible by construction;
//! * failing cases are **not shrunk** — the failing inputs are printed
//!   via `Debug` exactly as generated.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator (splitmix64) used to draw test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
#[doc(hidden)]
pub fn __fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A source of generated values. Mirrors `proptest::strategy::Strategy` in
/// name and associated-type shape; generation is direct sampling.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can be 2^64 for the full domain; sample via u128.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                assert!(lo < hi, "empty float range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                // Occasionally emit the exact endpoints so `..=` differs
                // from `..` in practice, not just in type.
                match rng.below(64) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.unit_f64() as $t) * (hi - lo),
                }
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e12;
        mag * rng.unit_f64()
    }
}

/// Whole-domain strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::bool`: the `ANY` boolean strategy.
pub mod bool {
    /// Yields `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut super::TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Collection / sample strategies
// ---------------------------------------------------------------------------

/// Size specification accepted by [`collection::vec`] and
/// [`sample::subsequence`] (`proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Vector of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::sample`.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Order-preserving random subsequence of `values`, with length in
    /// `size` (`proptest::sample::subsequence`).
    pub fn subsequence<T: Clone + Debug>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            values,
            size: size.into(),
        }
    }

    /// The strategy returned by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct SubsequenceStrategy<T: Clone + Debug> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + Debug> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.size.sample(rng).min(self.values.len());
            // Floyd-style distinct index sampling, then sort to preserve
            // the source order (what subsequence means).
            let mut picked: Vec<usize> = Vec::with_capacity(n);
            while picked.len() < n {
                let i = rng.below(self.values.len() as u64) as usize;
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// Uniform choice among `values` (`proptest::sample::select`).
    pub fn select<T: Clone + Debug>(values: Vec<T>) -> SelectStrategy<T> {
        SelectStrategy { values }
    }

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct SelectStrategy<T: Clone + Debug> {
        values: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.values.is_empty(), "select over empty set");
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Config / errors / macros
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps sim-heavy properties
        // fast while still sampling the space meaningfully.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert*` inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Define property tests. Matches the real macro's surface for this
/// workspace: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strat = ($(&$strat,)+);
            let __seed =
                $crate::__fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let __vals = $crate::Strategy::generate(&__strat, &mut __rng);
                let __inputs = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __out: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __out {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure records the
/// failing inputs instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Common imports, mirroring `proptest::prelude::*` for this workspace.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}
