//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's no-poison API: `lock()`
//! returns the guard directly. A poisoned lock (a worker panicked while
//! holding it) panics here too, matching parking_lot's effective behaviour
//! for this workspace — the sweep runner already treats a panicked worker
//! as fatal.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutual exclusion primitive matching `parking_lot::Mutex`'s API surface.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, returning the guard directly (no poison `Result`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("mutex poisoned: a thread panicked while holding it")
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("mutex poisoned: a thread panicked while holding it")
    }
}
