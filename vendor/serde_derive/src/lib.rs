//! Offline stand-in for `serde_derive`.
//!
//! The workspace's stub `serde` crate provides blanket implementations of
//! its `Serialize`/`Deserialize` marker traits, so the derives here only
//! need to (a) exist and (b) declare the `serde` helper attribute so that
//! `#[serde(default)]`, `#[serde(skip)]`, `#[serde(default = "path")]`
//! and friends parse. They emit no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
