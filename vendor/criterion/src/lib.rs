//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling and runnable without the statistics
//! machinery: each registered bench body runs exactly once and its elapsed
//! wall time is printed. Good enough to smoke-test that the benches still
//! execute; useless for actual measurement — restore the real criterion
//! dependency for that.

use std::fmt::Display;
use std::time::Instant;

/// Stand-in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run `f` once under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(name, &mut f);
        self
    }

    /// Open a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run `f` once under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Run `f` once with `input`, under the composed benchmark id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        report(&label, start);
        self
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter` like the real crate.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Stand-in for `criterion::Bencher`: `iter` runs the closure once.
#[derive(Default)]
pub struct Bencher {}

impl Bencher {
    /// Run the measured body exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    report(label, start);
}

fn report(label: &str, start: Instant) {
    println!(
        "bench {label}: ran once in {:?} (offline criterion stand-in)",
        start.elapsed()
    );
}

/// Build a bench-group entry point from bench functions, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Build `main()` from one or more bench groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // If a test runner invokes this binary with libtest's --test
            // flag, skip the bodies: running the full sims there would be
            // both slow and redundant with the experiments crate's tests.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
