//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde through `#[derive(Serialize, Deserialize)]`
//! and a single generic `T: Serialize` bound in the experiment renderer.
//! Blanket marker implementations satisfy every bound without generating
//! any serialization code; the derive macros (from the stub `serde_derive`)
//! exist purely so the attribute syntax compiles.

/// Marker trait standing in for `serde::Serialize`. Every type implements it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`. Every type implements it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// `serde::de` module subset.
pub mod de {
    pub use super::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
