//! Offline stand-in for `crossbeam` (the `scope` and `channel` APIs only).
//!
//! `crossbeam::scope` predates `std::thread::scope`; the std version now
//! provides the same structured-concurrency guarantee, so this stub adapts
//! the crossbeam calling convention (`scope.spawn(|_| ...)`, outer
//! `Result`) onto it. Panics in spawned threads propagate when the scope
//! closes (std re-raises them), so the `Err` arm of the returned `Result`
//! is unreachable here — callers' `.expect(...)` never fires spuriously.

pub mod channel;

use std::thread;

/// Scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope handle argument
    /// (unused by this workspace) to match crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope in which threads may borrow from the enclosing stack
/// frame; all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias for callers using the long path.
pub mod thread_mod {
    pub use super::{scope, Scope};
}
