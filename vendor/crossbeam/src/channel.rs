//! Offline stand-in for `crossbeam-channel` (the subset `dyrs-net` uses):
//! multi-producer multi-consumer FIFO channels, bounded and unbounded,
//! with blocking, non-blocking and timed receives.
//!
//! Built on `Mutex<VecDeque>` + two `Condvar`s (not-empty / not-full).
//! Semantics match crossbeam where the workspace depends on them:
//!
//! * FIFO per channel — receive order is exactly send order;
//! * `send` on a bounded channel blocks while full (backpressure);
//! * a send/receive on a channel whose other side is fully dropped
//!   returns a disconnect error instead of blocking forever.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every receiver is gone.
/// Carries the rejected message like crossbeam's type of the same name.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty (senders still connected).
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on push and on sender-side disconnect.
    not_empty: Condvar,
    /// Signalled on pop and on receiver-side disconnect.
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

/// The sending half. Cloning adds a producer to the same channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloning adds a consumer to the same channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Channel with no capacity bound: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Channel holding at most `cap` queued messages: `send` blocks while
/// full, giving the producer natural backpressure.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Queue `msg`, blocking while a bounded channel is at capacity.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Number of messages currently queued (racy outside tests).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty (racy outside tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Pop the next message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match inner.queue.pop_front() {
            Some(msg) => {
                self.shared.not_full.notify_one();
                Ok(msg)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block until a message arrives, every sender drops, or `timeout`
    /// elapses — whichever happens first.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _wait) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            inner = guard;
        }
    }

    /// Number of messages currently queued (racy outside tests).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty (racy outside tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).expect("receiver alive");
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).expect("space");
        tx.send(2).expect("space");
        let t = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        t.join().expect("sender thread").expect("receiver alive");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
