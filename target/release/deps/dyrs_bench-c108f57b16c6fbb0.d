/root/repo/target/release/deps/dyrs_bench-c108f57b16c6fbb0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdyrs_bench-c108f57b16c6fbb0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdyrs_bench-c108f57b16c6fbb0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
