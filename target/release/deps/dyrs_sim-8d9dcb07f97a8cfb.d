/root/repo/target/release/deps/dyrs_sim-8d9dcb07f97a8cfb.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

/root/repo/target/release/deps/libdyrs_sim-8d9dcb07f97a8cfb.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

/root/repo/target/release/deps/libdyrs_sim-8d9dcb07f97a8cfb.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/driver/mod.rs:
crates/sim/src/driver/failures.rs:
crates/sim/src/driver/jobs.rs:
crates/sim/src/driver/migration.rs:
crates/sim/src/driver/repair.rs:
crates/sim/src/driver/streams.rs:
crates/sim/src/events.rs:
crates/sim/src/result.rs:
