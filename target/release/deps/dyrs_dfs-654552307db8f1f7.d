/root/repo/target/release/deps/dyrs_dfs-654552307db8f1f7.d: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

/root/repo/target/release/deps/libdyrs_dfs-654552307db8f1f7.rlib: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

/root/repo/target/release/deps/libdyrs_dfs-654552307db8f1f7.rmeta: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

crates/dfs/src/lib.rs:
crates/dfs/src/block.rs:
crates/dfs/src/datanode.rs:
crates/dfs/src/ids.rs:
crates/dfs/src/namenode.rs:
crates/dfs/src/namespace.rs:
crates/dfs/src/placement.rs:
crates/dfs/src/read.rs:
