/root/repo/target/release/deps/dyrs_workloads-131cd00e19948e48.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/release/deps/libdyrs_workloads-131cd00e19948e48.rlib: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/release/deps/libdyrs_workloads-131cd00e19948e48.rmeta: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
