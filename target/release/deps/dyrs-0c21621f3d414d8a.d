/root/repo/target/release/deps/dyrs-0c21621f3d414d8a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

/root/repo/target/release/deps/libdyrs-0c21621f3d414d8a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

/root/repo/target/release/deps/libdyrs-0c21621f3d414d8a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/estimator.rs:
crates/core/src/master.rs:
crates/core/src/policy.rs:
crates/core/src/refs.rs:
crates/core/src/slave.rs:
crates/core/src/types.rs:
