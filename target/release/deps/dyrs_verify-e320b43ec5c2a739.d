/root/repo/target/release/deps/dyrs_verify-e320b43ec5c2a739.d: crates/verify/src/main.rs

/root/repo/target/release/deps/dyrs_verify-e320b43ec5c2a739: crates/verify/src/main.rs

crates/verify/src/main.rs:
