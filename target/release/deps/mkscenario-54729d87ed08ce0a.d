/root/repo/target/release/deps/mkscenario-54729d87ed08ce0a.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/release/deps/mkscenario-54729d87ed08ce0a: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
