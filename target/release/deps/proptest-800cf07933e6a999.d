/root/repo/target/release/deps/proptest-800cf07933e6a999.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-800cf07933e6a999.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-800cf07933e6a999.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
