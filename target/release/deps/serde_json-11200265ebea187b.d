/root/repo/target/release/deps/serde_json-11200265ebea187b.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-11200265ebea187b.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-11200265ebea187b.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
