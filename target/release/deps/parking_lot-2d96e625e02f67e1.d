/root/repo/target/release/deps/parking_lot-2d96e625e02f67e1.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2d96e625e02f67e1.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2d96e625e02f67e1.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
