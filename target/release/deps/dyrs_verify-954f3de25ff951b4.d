/root/repo/target/release/deps/dyrs_verify-954f3de25ff951b4.d: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

/root/repo/target/release/deps/libdyrs_verify-954f3de25ff951b4.rlib: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

/root/repo/target/release/deps/libdyrs_verify-954f3de25ff951b4.rmeta: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

crates/verify/src/lib.rs:
crates/verify/src/allowlist.rs:
crates/verify/src/cli.rs:
crates/verify/src/lexer.rs:
crates/verify/src/rules.rs:
crates/verify/src/scan.rs:
