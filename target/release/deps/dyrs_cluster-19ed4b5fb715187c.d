/root/repo/target/release/deps/dyrs_cluster-19ed4b5fb715187c.d: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/release/deps/libdyrs_cluster-19ed4b5fb715187c.rlib: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/release/deps/libdyrs_cluster-19ed4b5fb715187c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

crates/cluster/src/lib.rs:
crates/cluster/src/interference.rs:
crates/cluster/src/memory.rs:
crates/cluster/src/node.rs:
