/root/repo/target/release/deps/serde_derive-62dd3d05b9b79135.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-62dd3d05b9b79135.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
