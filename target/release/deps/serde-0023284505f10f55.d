/root/repo/target/release/deps/serde-0023284505f10f55.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0023284505f10f55.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0023284505f10f55.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
