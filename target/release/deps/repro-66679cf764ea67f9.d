/root/repo/target/release/deps/repro-66679cf764ea67f9.d: crates/experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-66679cf764ea67f9: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
