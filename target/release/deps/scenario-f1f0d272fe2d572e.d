/root/repo/target/release/deps/scenario-f1f0d272fe2d572e.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/release/deps/scenario-f1f0d272fe2d572e: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
