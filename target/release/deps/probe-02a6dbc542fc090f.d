/root/repo/target/release/deps/probe-02a6dbc542fc090f.d: crates/experiments/src/bin/probe.rs

/root/repo/target/release/deps/probe-02a6dbc542fc090f: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
