/root/repo/target/release/deps/dyrs_engine-91a5f255ce1daa2f.d: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/release/deps/libdyrs_engine-91a5f255ce1daa2f.rlib: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/release/deps/libdyrs_engine-91a5f255ce1daa2f.rmeta: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

crates/engine/src/lib.rs:
crates/engine/src/config.rs:
crates/engine/src/job.rs:
crates/engine/src/metrics.rs:
crates/engine/src/scheduler.rs:
crates/engine/src/task.rs:
