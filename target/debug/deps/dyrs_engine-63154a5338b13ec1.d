/root/repo/target/debug/deps/dyrs_engine-63154a5338b13ec1.d: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/debug/deps/libdyrs_engine-63154a5338b13ec1.rlib: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/debug/deps/libdyrs_engine-63154a5338b13ec1.rmeta: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

crates/engine/src/lib.rs:
crates/engine/src/config.rs:
crates/engine/src/job.rs:
crates/engine/src/metrics.rs:
crates/engine/src/scheduler.rs:
crates/engine/src/task.rs:
