/root/repo/target/debug/deps/extensions-8ce80cfbd4741923.d: crates/experiments/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-8ce80cfbd4741923: crates/experiments/../../tests/extensions.rs

crates/experiments/../../tests/extensions.rs:
