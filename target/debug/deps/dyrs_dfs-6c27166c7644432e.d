/root/repo/target/debug/deps/dyrs_dfs-6c27166c7644432e.d: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_dfs-6c27166c7644432e.rmeta: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs Cargo.toml

crates/dfs/src/lib.rs:
crates/dfs/src/block.rs:
crates/dfs/src/datanode.rs:
crates/dfs/src/ids.rs:
crates/dfs/src/namenode.rs:
crates/dfs/src/namespace.rs:
crates/dfs/src/placement.rs:
crates/dfs/src/read.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
