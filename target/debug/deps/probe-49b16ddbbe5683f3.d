/root/repo/target/debug/deps/probe-49b16ddbbe5683f3.d: crates/experiments/src/bin/probe.rs

/root/repo/target/debug/deps/probe-49b16ddbbe5683f3: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
