/root/repo/target/debug/deps/integration-18d26fb25ba4d0ca.d: crates/sim/tests/integration.rs

/root/repo/target/debug/deps/integration-18d26fb25ba4d0ca: crates/sim/tests/integration.rs

crates/sim/tests/integration.rs:
