/root/repo/target/debug/deps/proptests-a8b3f25428859860.d: crates/simkit/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a8b3f25428859860: crates/simkit/tests/proptests.rs

crates/simkit/tests/proptests.rs:
