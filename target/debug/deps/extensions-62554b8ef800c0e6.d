/root/repo/target/debug/deps/extensions-62554b8ef800c0e6.d: crates/experiments/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-62554b8ef800c0e6: crates/experiments/../../tests/extensions.rs

crates/experiments/../../tests/extensions.rs:
