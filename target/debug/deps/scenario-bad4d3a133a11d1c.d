/root/repo/target/debug/deps/scenario-bad4d3a133a11d1c.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/debug/deps/scenario-bad4d3a133a11d1c: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
