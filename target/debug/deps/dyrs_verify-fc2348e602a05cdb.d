/root/repo/target/debug/deps/dyrs_verify-fc2348e602a05cdb.d: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

/root/repo/target/debug/deps/libdyrs_verify-fc2348e602a05cdb.rlib: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

/root/repo/target/debug/deps/libdyrs_verify-fc2348e602a05cdb.rmeta: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

crates/verify/src/lib.rs:
crates/verify/src/allowlist.rs:
crates/verify/src/cli.rs:
crates/verify/src/lexer.rs:
crates/verify/src/rules.rs:
crates/verify/src/scan.rs:
