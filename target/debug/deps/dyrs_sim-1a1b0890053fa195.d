/root/repo/target/debug/deps/dyrs_sim-1a1b0890053fa195.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libdyrs_sim-1a1b0890053fa195.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libdyrs_sim-1a1b0890053fa195.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/driver/mod.rs:
crates/sim/src/driver/failures.rs:
crates/sim/src/driver/jobs.rs:
crates/sim/src/driver/migration.rs:
crates/sim/src/driver/repair.rs:
crates/sim/src/driver/streams.rs:
crates/sim/src/events.rs:
crates/sim/src/result.rs:
