/root/repo/target/debug/deps/proptests-857fdb6553f96db7.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-857fdb6553f96db7: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
