/root/repo/target/debug/deps/proptests-7deeb0d6516820e8.d: crates/dfs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7deeb0d6516820e8: crates/dfs/tests/proptests.rs

crates/dfs/tests/proptests.rs:
