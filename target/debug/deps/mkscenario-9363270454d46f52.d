/root/repo/target/debug/deps/mkscenario-9363270454d46f52.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/debug/deps/mkscenario-9363270454d46f52: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
