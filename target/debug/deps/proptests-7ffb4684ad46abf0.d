/root/repo/target/debug/deps/proptests-7ffb4684ad46abf0.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7ffb4684ad46abf0: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
