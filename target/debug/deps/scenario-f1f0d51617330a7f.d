/root/repo/target/debug/deps/scenario-f1f0d51617330a7f.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/debug/deps/scenario-f1f0d51617330a7f: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
