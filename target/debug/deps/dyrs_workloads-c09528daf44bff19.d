/root/repo/target/debug/deps/dyrs_workloads-c09528daf44bff19.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-c09528daf44bff19.rlib: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-c09528daf44bff19.rmeta: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
