/root/repo/target/debug/deps/dyrs-505d769129289167.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs-505d769129289167.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/estimator.rs:
crates/core/src/master.rs:
crates/core/src/policy.rs:
crates/core/src/refs.rs:
crates/core/src/slave.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
