/root/repo/target/debug/deps/repro-652ee00db58d4236.d: crates/experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-652ee00db58d4236.rmeta: crates/experiments/src/bin/repro.rs Cargo.toml

crates/experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
