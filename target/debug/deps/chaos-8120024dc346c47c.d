/root/repo/target/debug/deps/chaos-8120024dc346c47c.d: crates/sim/tests/chaos.rs

/root/repo/target/debug/deps/chaos-8120024dc346c47c: crates/sim/tests/chaos.rs

crates/sim/tests/chaos.rs:
