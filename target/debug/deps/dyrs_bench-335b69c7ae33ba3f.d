/root/repo/target/debug/deps/dyrs_bench-335b69c7ae33ba3f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_bench-335b69c7ae33ba3f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
