/root/repo/target/debug/deps/dyrs_engine-d45aa7868061a326.d: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_engine-d45aa7868061a326.rmeta: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/config.rs:
crates/engine/src/job.rs:
crates/engine/src/metrics.rs:
crates/engine/src/scheduler.rs:
crates/engine/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
