/root/repo/target/debug/deps/dyrs_bench-2280c91938cf9375.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dyrs_bench-2280c91938cf9375: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
