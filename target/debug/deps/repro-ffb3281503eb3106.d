/root/repo/target/debug/deps/repro-ffb3281503eb3106.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ffb3281503eb3106: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
