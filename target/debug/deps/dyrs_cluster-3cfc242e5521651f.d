/root/repo/target/debug/deps/dyrs_cluster-3cfc242e5521651f.d: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/debug/deps/libdyrs_cluster-3cfc242e5521651f.rlib: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/debug/deps/libdyrs_cluster-3cfc242e5521651f.rmeta: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

crates/cluster/src/lib.rs:
crates/cluster/src/interference.rs:
crates/cluster/src/memory.rs:
crates/cluster/src/node.rs:
