/root/repo/target/debug/deps/dyrs_workloads-ffa9db7f18e79314.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/dyrs_workloads-ffa9db7f18e79314: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
