/root/repo/target/debug/deps/dyrs_dfs-a05efb38e82c9d12.d: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

/root/repo/target/debug/deps/dyrs_dfs-a05efb38e82c9d12: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

crates/dfs/src/lib.rs:
crates/dfs/src/block.rs:
crates/dfs/src/datanode.rs:
crates/dfs/src/ids.rs:
crates/dfs/src/namenode.rs:
crates/dfs/src/namespace.rs:
crates/dfs/src/placement.rs:
crates/dfs/src/read.rs:
