/root/repo/target/debug/deps/dyrs_engine-c5b8799291cff34b.d: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/debug/deps/dyrs_engine-c5b8799291cff34b: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

crates/engine/src/lib.rs:
crates/engine/src/config.rs:
crates/engine/src/job.rs:
crates/engine/src/metrics.rs:
crates/engine/src/scheduler.rs:
crates/engine/src/task.rs:
