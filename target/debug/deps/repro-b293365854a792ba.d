/root/repo/target/debug/deps/repro-b293365854a792ba.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b293365854a792ba: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
