/root/repo/target/debug/deps/integration-2cb45c80fa0c01c2.d: crates/sim/tests/integration.rs

/root/repo/target/debug/deps/integration-2cb45c80fa0c01c2: crates/sim/tests/integration.rs

crates/sim/tests/integration.rs:
