/root/repo/target/debug/deps/dyrs_verify-18eb8fcd659a68e2.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/dyrs_verify-18eb8fcd659a68e2: crates/verify/src/main.rs

crates/verify/src/main.rs:
