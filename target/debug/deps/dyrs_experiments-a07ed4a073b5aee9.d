/root/repo/target/debug/deps/dyrs_experiments-a07ed4a073b5aee9.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/fig01.rs crates/experiments/src/fig02.rs crates/experiments/src/fig03.rs crates/experiments/src/fig04.rs crates/experiments/src/fig05.rs crates/experiments/src/fig06.rs crates/experiments/src/fig07.rs crates/experiments/src/fig08.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/iterative.rs crates/experiments/src/policies.rs crates/experiments/src/render.rs crates/experiments/src/replay.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios.rs crates/experiments/src/sensitivity.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_experiments-a07ed4a073b5aee9.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/fig01.rs crates/experiments/src/fig02.rs crates/experiments/src/fig03.rs crates/experiments/src/fig04.rs crates/experiments/src/fig05.rs crates/experiments/src/fig06.rs crates/experiments/src/fig07.rs crates/experiments/src/fig08.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/iterative.rs crates/experiments/src/policies.rs crates/experiments/src/render.rs crates/experiments/src/replay.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios.rs crates/experiments/src/sensitivity.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/fig01.rs:
crates/experiments/src/fig02.rs:
crates/experiments/src/fig03.rs:
crates/experiments/src/fig04.rs:
crates/experiments/src/fig05.rs:
crates/experiments/src/fig06.rs:
crates/experiments/src/fig07.rs:
crates/experiments/src/fig08.rs:
crates/experiments/src/fig09.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/iterative.rs:
crates/experiments/src/policies.rs:
crates/experiments/src/render.rs:
crates/experiments/src/replay.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenarios.rs:
crates/experiments/src/sensitivity.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
