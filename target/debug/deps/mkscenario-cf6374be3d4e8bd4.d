/root/repo/target/debug/deps/mkscenario-cf6374be3d4e8bd4.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/debug/deps/mkscenario-cf6374be3d4e8bd4: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
