/root/repo/target/debug/deps/mkscenario-1c669cbfe307554a.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/debug/deps/mkscenario-1c669cbfe307554a: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
