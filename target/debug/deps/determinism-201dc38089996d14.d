/root/repo/target/debug/deps/determinism-201dc38089996d14.d: crates/experiments/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-201dc38089996d14: crates/experiments/../../tests/determinism.rs

crates/experiments/../../tests/determinism.rs:
