/root/repo/target/debug/deps/repro-38c41966c8638c9b.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-38c41966c8638c9b: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
