/root/repo/target/debug/deps/mkscenario-38e85d8bf1a4e8c2.d: crates/experiments/src/bin/mkscenario.rs Cargo.toml

/root/repo/target/debug/deps/libmkscenario-38e85d8bf1a4e8c2.rmeta: crates/experiments/src/bin/mkscenario.rs Cargo.toml

crates/experiments/src/bin/mkscenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
