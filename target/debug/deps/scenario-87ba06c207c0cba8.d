/root/repo/target/debug/deps/scenario-87ba06c207c0cba8.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/debug/deps/scenario-87ba06c207c0cba8: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
