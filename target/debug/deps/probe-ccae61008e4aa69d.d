/root/repo/target/debug/deps/probe-ccae61008e4aa69d.d: crates/experiments/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-ccae61008e4aa69d.rmeta: crates/experiments/src/bin/probe.rs Cargo.toml

crates/experiments/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
