/root/repo/target/debug/deps/repro-a277dca073c3139d.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a277dca073c3139d: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
