/root/repo/target/debug/deps/dyrs_workloads-ee01fa3feba9f31a.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-ee01fa3feba9f31a.rlib: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-ee01fa3feba9f31a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
