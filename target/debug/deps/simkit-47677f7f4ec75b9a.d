/root/repo/target/debug/deps/simkit-47677f7f4ec75b9a.d: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/simkit-47677f7f4ec75b9a: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/audit.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats/mod.rs:
crates/simkit/src/stats/ewma.rs:
crates/simkit/src/stats/histogram.rs:
crates/simkit/src/stats/online.rs:
crates/simkit/src/stats/quantile.rs:
crates/simkit/src/stats/timeseries.rs:
crates/simkit/src/time.rs:
