/root/repo/target/debug/deps/probe-d5525ceb54debe51.d: crates/experiments/src/bin/probe.rs

/root/repo/target/debug/deps/probe-d5525ceb54debe51: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
