/root/repo/target/debug/deps/simkit-605f72622d98f655.d: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-605f72622d98f655.rlib: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-605f72622d98f655.rmeta: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/audit.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats/mod.rs:
crates/simkit/src/stats/ewma.rs:
crates/simkit/src/stats/histogram.rs:
crates/simkit/src/stats/online.rs:
crates/simkit/src/stats/quantile.rs:
crates/simkit/src/stats/timeseries.rs:
crates/simkit/src/time.rs:
