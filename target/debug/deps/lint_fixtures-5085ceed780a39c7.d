/root/repo/target/debug/deps/lint_fixtures-5085ceed780a39c7.d: crates/verify/tests/lint_fixtures.rs

/root/repo/target/debug/deps/lint_fixtures-5085ceed780a39c7: crates/verify/tests/lint_fixtures.rs

crates/verify/tests/lint_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/verify
