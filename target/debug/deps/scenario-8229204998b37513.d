/root/repo/target/debug/deps/scenario-8229204998b37513.d: crates/experiments/src/bin/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libscenario-8229204998b37513.rmeta: crates/experiments/src/bin/scenario.rs Cargo.toml

crates/experiments/src/bin/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
