/root/repo/target/debug/deps/dyrs_verify-fe0845647eab2d86.d: crates/verify/src/main.rs

/root/repo/target/debug/deps/dyrs_verify-fe0845647eab2d86: crates/verify/src/main.rs

crates/verify/src/main.rs:
