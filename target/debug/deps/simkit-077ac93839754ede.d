/root/repo/target/debug/deps/simkit-077ac93839754ede.d: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimkit-077ac93839754ede.rmeta: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/audit.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats/mod.rs:
crates/simkit/src/stats/ewma.rs:
crates/simkit/src/stats/histogram.rs:
crates/simkit/src/stats/online.rs:
crates/simkit/src/stats/quantile.rs:
crates/simkit/src/stats/timeseries.rs:
crates/simkit/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
