/root/repo/target/debug/deps/dyrs_bench-d9a5e82f1c41ac20.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdyrs_bench-d9a5e82f1c41ac20.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdyrs_bench-d9a5e82f1c41ac20.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
