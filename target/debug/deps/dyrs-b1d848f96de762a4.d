/root/repo/target/debug/deps/dyrs-b1d848f96de762a4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libdyrs-b1d848f96de762a4.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libdyrs-b1d848f96de762a4.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/estimator.rs crates/core/src/master.rs crates/core/src/policy.rs crates/core/src/refs.rs crates/core/src/slave.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/estimator.rs:
crates/core/src/master.rs:
crates/core/src/policy.rs:
crates/core/src/refs.rs:
crates/core/src/slave.rs:
crates/core/src/types.rs:
