/root/repo/target/debug/deps/scenario-207ddba55169a565.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/debug/deps/scenario-207ddba55169a565: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
