/root/repo/target/debug/deps/probe-fba90786dbae7d3b.d: crates/experiments/src/bin/probe.rs

/root/repo/target/debug/deps/probe-fba90786dbae7d3b: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
