/root/repo/target/debug/deps/dyrs_dfs-c90acf42a1418413.d: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

/root/repo/target/debug/deps/libdyrs_dfs-c90acf42a1418413.rlib: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

/root/repo/target/debug/deps/libdyrs_dfs-c90acf42a1418413.rmeta: crates/dfs/src/lib.rs crates/dfs/src/block.rs crates/dfs/src/datanode.rs crates/dfs/src/ids.rs crates/dfs/src/namenode.rs crates/dfs/src/namespace.rs crates/dfs/src/placement.rs crates/dfs/src/read.rs

crates/dfs/src/lib.rs:
crates/dfs/src/block.rs:
crates/dfs/src/datanode.rs:
crates/dfs/src/ids.rs:
crates/dfs/src/namenode.rs:
crates/dfs/src/namespace.rs:
crates/dfs/src/placement.rs:
crates/dfs/src/read.rs:
