/root/repo/target/debug/deps/dyrs_cluster-2b3c7f955c7d40e2.d: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/debug/deps/dyrs_cluster-2b3c7f955c7d40e2: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

crates/cluster/src/lib.rs:
crates/cluster/src/interference.rs:
crates/cluster/src/memory.rs:
crates/cluster/src/node.rs:
