/root/repo/target/debug/deps/dyrs_sim-9bac0de5fae06780.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_sim-9bac0de5fae06780.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/driver/mod.rs crates/sim/src/driver/failures.rs crates/sim/src/driver/jobs.rs crates/sim/src/driver/migration.rs crates/sim/src/driver/repair.rs crates/sim/src/driver/streams.rs crates/sim/src/events.rs crates/sim/src/result.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/driver/mod.rs:
crates/sim/src/driver/failures.rs:
crates/sim/src/driver/jobs.rs:
crates/sim/src/driver/migration.rs:
crates/sim/src/driver/repair.rs:
crates/sim/src/driver/streams.rs:
crates/sim/src/events.rs:
crates/sim/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
