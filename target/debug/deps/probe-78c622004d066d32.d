/root/repo/target/debug/deps/probe-78c622004d066d32.d: crates/experiments/src/bin/probe.rs

/root/repo/target/debug/deps/probe-78c622004d066d32: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
