/root/repo/target/debug/deps/dyrs_verify-7ce278741064a008.d: crates/verify/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_verify-7ce278741064a008.rmeta: crates/verify/src/main.rs Cargo.toml

crates/verify/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
