/root/repo/target/debug/deps/simkit-ce53611f7662ab9d.d: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-ce53611f7662ab9d.rlib: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-ce53611f7662ab9d.rmeta: crates/simkit/src/lib.rs crates/simkit/src/audit.rs crates/simkit/src/fluid.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/stats/mod.rs crates/simkit/src/stats/ewma.rs crates/simkit/src/stats/histogram.rs crates/simkit/src/stats/online.rs crates/simkit/src/stats/quantile.rs crates/simkit/src/stats/timeseries.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/audit.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats/mod.rs:
crates/simkit/src/stats/ewma.rs:
crates/simkit/src/stats/histogram.rs:
crates/simkit/src/stats/online.rs:
crates/simkit/src/stats/quantile.rs:
crates/simkit/src/stats/timeseries.rs:
crates/simkit/src/time.rs:
