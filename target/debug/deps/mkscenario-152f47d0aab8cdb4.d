/root/repo/target/debug/deps/mkscenario-152f47d0aab8cdb4.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/debug/deps/mkscenario-152f47d0aab8cdb4: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
