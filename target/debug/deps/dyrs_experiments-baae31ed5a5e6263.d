/root/repo/target/debug/deps/dyrs_experiments-baae31ed5a5e6263.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/fig01.rs crates/experiments/src/fig02.rs crates/experiments/src/fig03.rs crates/experiments/src/fig04.rs crates/experiments/src/fig05.rs crates/experiments/src/fig06.rs crates/experiments/src/fig07.rs crates/experiments/src/fig08.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/iterative.rs crates/experiments/src/policies.rs crates/experiments/src/render.rs crates/experiments/src/replay.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios.rs crates/experiments/src/sensitivity.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs

/root/repo/target/debug/deps/libdyrs_experiments-baae31ed5a5e6263.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/fig01.rs crates/experiments/src/fig02.rs crates/experiments/src/fig03.rs crates/experiments/src/fig04.rs crates/experiments/src/fig05.rs crates/experiments/src/fig06.rs crates/experiments/src/fig07.rs crates/experiments/src/fig08.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/iterative.rs crates/experiments/src/policies.rs crates/experiments/src/render.rs crates/experiments/src/replay.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios.rs crates/experiments/src/sensitivity.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs

/root/repo/target/debug/deps/libdyrs_experiments-baae31ed5a5e6263.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/fig01.rs crates/experiments/src/fig02.rs crates/experiments/src/fig03.rs crates/experiments/src/fig04.rs crates/experiments/src/fig05.rs crates/experiments/src/fig06.rs crates/experiments/src/fig07.rs crates/experiments/src/fig08.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/iterative.rs crates/experiments/src/policies.rs crates/experiments/src/render.rs crates/experiments/src/replay.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios.rs crates/experiments/src/sensitivity.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/fig01.rs:
crates/experiments/src/fig02.rs:
crates/experiments/src/fig03.rs:
crates/experiments/src/fig04.rs:
crates/experiments/src/fig05.rs:
crates/experiments/src/fig06.rs:
crates/experiments/src/fig07.rs:
crates/experiments/src/fig08.rs:
crates/experiments/src/fig09.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/iterative.rs:
crates/experiments/src/policies.rs:
crates/experiments/src/render.rs:
crates/experiments/src/replay.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenarios.rs:
crates/experiments/src/sensitivity.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/table2.rs:
