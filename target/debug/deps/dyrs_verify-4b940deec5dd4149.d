/root/repo/target/debug/deps/dyrs_verify-4b940deec5dd4149.d: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_verify-4b940deec5dd4149.rmeta: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/allowlist.rs:
crates/verify/src/cli.rs:
crates/verify/src/lexer.rs:
crates/verify/src/rules.rs:
crates/verify/src/scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
