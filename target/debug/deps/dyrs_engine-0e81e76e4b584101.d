/root/repo/target/debug/deps/dyrs_engine-0e81e76e4b584101.d: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/debug/deps/libdyrs_engine-0e81e76e4b584101.rlib: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

/root/repo/target/debug/deps/libdyrs_engine-0e81e76e4b584101.rmeta: crates/engine/src/lib.rs crates/engine/src/config.rs crates/engine/src/job.rs crates/engine/src/metrics.rs crates/engine/src/scheduler.rs crates/engine/src/task.rs

crates/engine/src/lib.rs:
crates/engine/src/config.rs:
crates/engine/src/job.rs:
crates/engine/src/metrics.rs:
crates/engine/src/scheduler.rs:
crates/engine/src/task.rs:
