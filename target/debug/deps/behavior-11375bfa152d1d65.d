/root/repo/target/debug/deps/behavior-11375bfa152d1d65.d: crates/sim/tests/behavior.rs

/root/repo/target/debug/deps/behavior-11375bfa152d1d65: crates/sim/tests/behavior.rs

crates/sim/tests/behavior.rs:
