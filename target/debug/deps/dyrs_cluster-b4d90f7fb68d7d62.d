/root/repo/target/debug/deps/dyrs_cluster-b4d90f7fb68d7d62.d: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/debug/deps/libdyrs_cluster-b4d90f7fb68d7d62.rlib: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

/root/repo/target/debug/deps/libdyrs_cluster-b4d90f7fb68d7d62.rmeta: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs

crates/cluster/src/lib.rs:
crates/cluster/src/interference.rs:
crates/cluster/src/memory.rs:
crates/cluster/src/node.rs:
