/root/repo/target/debug/deps/scenario-9e3cf94411f3b369.d: crates/experiments/src/bin/scenario.rs

/root/repo/target/debug/deps/scenario-9e3cf94411f3b369: crates/experiments/src/bin/scenario.rs

crates/experiments/src/bin/scenario.rs:
