/root/repo/target/debug/deps/dyrs_bench-61a74f2c10cc4a32.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdyrs_bench-61a74f2c10cc4a32.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdyrs_bench-61a74f2c10cc4a32.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
