/root/repo/target/debug/deps/dyrs_workloads-a51fb90033b0f462.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-a51fb90033b0f462.rlib: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

/root/repo/target/debug/deps/libdyrs_workloads-a51fb90033b0f462.rmeta: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
