/root/repo/target/debug/deps/repro-d6a37a910f181382.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d6a37a910f181382: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
