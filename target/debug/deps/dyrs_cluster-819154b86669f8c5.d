/root/repo/target/debug/deps/dyrs_cluster-819154b86669f8c5.d: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_cluster-819154b86669f8c5.rmeta: crates/cluster/src/lib.rs crates/cluster/src/interference.rs crates/cluster/src/memory.rs crates/cluster/src/node.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/interference.rs:
crates/cluster/src/memory.rs:
crates/cluster/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
