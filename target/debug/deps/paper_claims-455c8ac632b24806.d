/root/repo/target/debug/deps/paper_claims-455c8ac632b24806.d: crates/experiments/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-455c8ac632b24806: crates/experiments/../../tests/paper_claims.rs

crates/experiments/../../tests/paper_claims.rs:
