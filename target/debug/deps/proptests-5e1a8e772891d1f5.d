/root/repo/target/debug/deps/proptests-5e1a8e772891d1f5.d: crates/engine/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5e1a8e772891d1f5: crates/engine/tests/proptests.rs

crates/engine/tests/proptests.rs:
