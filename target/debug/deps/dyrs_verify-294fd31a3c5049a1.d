/root/repo/target/debug/deps/dyrs_verify-294fd31a3c5049a1.d: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

/root/repo/target/debug/deps/dyrs_verify-294fd31a3c5049a1: crates/verify/src/lib.rs crates/verify/src/allowlist.rs crates/verify/src/cli.rs crates/verify/src/lexer.rs crates/verify/src/rules.rs crates/verify/src/scan.rs

crates/verify/src/lib.rs:
crates/verify/src/allowlist.rs:
crates/verify/src/cli.rs:
crates/verify/src/lexer.rs:
crates/verify/src/rules.rs:
crates/verify/src/scan.rs:
