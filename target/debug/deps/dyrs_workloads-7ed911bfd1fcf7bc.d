/root/repo/target/debug/deps/dyrs_workloads-7ed911bfd1fcf7bc.d: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs Cargo.toml

/root/repo/target/debug/deps/libdyrs_workloads-7ed911bfd1fcf7bc.rmeta: crates/workloads/src/lib.rs crates/workloads/src/google.rs crates/workloads/src/hive.rs crates/workloads/src/iterative.rs crates/workloads/src/sort.rs crates/workloads/src/swim.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/google.rs:
crates/workloads/src/hive.rs:
crates/workloads/src/iterative.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/swim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
