/root/repo/target/debug/deps/behavior-3259755218ca047c.d: crates/sim/tests/behavior.rs

/root/repo/target/debug/deps/behavior-3259755218ca047c: crates/sim/tests/behavior.rs

crates/sim/tests/behavior.rs:
