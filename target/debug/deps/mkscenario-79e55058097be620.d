/root/repo/target/debug/deps/mkscenario-79e55058097be620.d: crates/experiments/src/bin/mkscenario.rs

/root/repo/target/debug/deps/mkscenario-79e55058097be620: crates/experiments/src/bin/mkscenario.rs

crates/experiments/src/bin/mkscenario.rs:
