/root/repo/target/debug/deps/paper_claims-50cd84cc9f2b2495.d: crates/experiments/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-50cd84cc9f2b2495: crates/experiments/../../tests/paper_claims.rs

crates/experiments/../../tests/paper_claims.rs:
