/root/repo/target/debug/deps/determinism-a521a58f45695ed7.d: crates/experiments/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-a521a58f45695ed7: crates/experiments/../../tests/determinism.rs

crates/experiments/../../tests/determinism.rs:
