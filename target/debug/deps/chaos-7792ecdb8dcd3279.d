/root/repo/target/debug/deps/chaos-7792ecdb8dcd3279.d: crates/sim/tests/chaos.rs

/root/repo/target/debug/deps/chaos-7792ecdb8dcd3279: crates/sim/tests/chaos.rs

crates/sim/tests/chaos.rs:
