/root/repo/target/debug/deps/probe-c99f39c733a0faf8.d: crates/experiments/src/bin/probe.rs

/root/repo/target/debug/deps/probe-c99f39c733a0faf8: crates/experiments/src/bin/probe.rs

crates/experiments/src/bin/probe.rs:
