/root/repo/target/debug/examples/capacity_planning-a1042039d40594a4.d: crates/experiments/../../examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-a1042039d40594a4: crates/experiments/../../examples/capacity_planning.rs

crates/experiments/../../examples/capacity_planning.rs:
