/root/repo/target/debug/examples/failure_drill-6f2c967abc010454.d: crates/experiments/../../examples/failure_drill.rs

/root/repo/target/debug/examples/failure_drill-6f2c967abc010454: crates/experiments/../../examples/failure_drill.rs

crates/experiments/../../examples/failure_drill.rs:
