/root/repo/target/debug/examples/adaptive_sort-b395376ca1b318c5.d: crates/experiments/../../examples/adaptive_sort.rs

/root/repo/target/debug/examples/adaptive_sort-b395376ca1b318c5: crates/experiments/../../examples/adaptive_sort.rs

crates/experiments/../../examples/adaptive_sort.rs:
