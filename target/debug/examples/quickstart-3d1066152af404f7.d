/root/repo/target/debug/examples/quickstart-3d1066152af404f7.d: crates/experiments/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3d1066152af404f7: crates/experiments/../../examples/quickstart.rs

crates/experiments/../../examples/quickstart.rs:
