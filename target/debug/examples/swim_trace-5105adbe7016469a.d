/root/repo/target/debug/examples/swim_trace-5105adbe7016469a.d: crates/experiments/../../examples/swim_trace.rs

/root/repo/target/debug/examples/swim_trace-5105adbe7016469a: crates/experiments/../../examples/swim_trace.rs

crates/experiments/../../examples/swim_trace.rs:
