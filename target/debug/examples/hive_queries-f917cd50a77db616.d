/root/repo/target/debug/examples/hive_queries-f917cd50a77db616.d: crates/experiments/../../examples/hive_queries.rs

/root/repo/target/debug/examples/hive_queries-f917cd50a77db616: crates/experiments/../../examples/hive_queries.rs

crates/experiments/../../examples/hive_queries.rs:
