/root/repo/target/debug/examples/quickstart-d592e04f2a0e546f.d: crates/experiments/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d592e04f2a0e546f: crates/experiments/../../examples/quickstart.rs

crates/experiments/../../examples/quickstart.rs:
