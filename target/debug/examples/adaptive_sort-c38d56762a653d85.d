/root/repo/target/debug/examples/adaptive_sort-c38d56762a653d85.d: crates/experiments/../../examples/adaptive_sort.rs

/root/repo/target/debug/examples/adaptive_sort-c38d56762a653d85: crates/experiments/../../examples/adaptive_sort.rs

crates/experiments/../../examples/adaptive_sort.rs:
