/root/repo/target/debug/examples/hive_queries-bccb4ca20924d55c.d: crates/experiments/../../examples/hive_queries.rs

/root/repo/target/debug/examples/hive_queries-bccb4ca20924d55c: crates/experiments/../../examples/hive_queries.rs

crates/experiments/../../examples/hive_queries.rs:
