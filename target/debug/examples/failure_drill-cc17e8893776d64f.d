/root/repo/target/debug/examples/failure_drill-cc17e8893776d64f.d: crates/experiments/../../examples/failure_drill.rs

/root/repo/target/debug/examples/failure_drill-cc17e8893776d64f: crates/experiments/../../examples/failure_drill.rs

crates/experiments/../../examples/failure_drill.rs:
