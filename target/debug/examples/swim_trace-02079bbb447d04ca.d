/root/repo/target/debug/examples/swim_trace-02079bbb447d04ca.d: crates/experiments/../../examples/swim_trace.rs

/root/repo/target/debug/examples/swim_trace-02079bbb447d04ca: crates/experiments/../../examples/swim_trace.rs

crates/experiments/../../examples/swim_trace.rs:
