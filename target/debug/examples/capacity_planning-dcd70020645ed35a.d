/root/repo/target/debug/examples/capacity_planning-dcd70020645ed35a.d: crates/experiments/../../examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-dcd70020645ed35a: crates/experiments/../../examples/capacity_planning.rs

crates/experiments/../../examples/capacity_planning.rs:
