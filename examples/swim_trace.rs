//! Run the full SWIM/Facebook-style workload (the paper's Table I
//! experiment) under one policy and print a job-level breakdown.
//!
//! ```sh
//! cargo run --release --example swim_trace              # DYRS, scale 0.5
//! cargo run --release --example swim_trace hdfs 1.0     # policy + scale
//! ```

use dyrs::MigrationPolicy;
use dyrs_experiments::scenarios::{hetero_config, swim_params};
use dyrs_sim::Simulation;
use dyrs_workloads::swim::{self, size_bin, SizeBin};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let policy = match args.get(1).map(|s| s.to_lowercase()).as_deref() {
        None | Some("dyrs") => MigrationPolicy::Dyrs,
        Some("hdfs") => MigrationPolicy::Disabled,
        Some("ram") => MigrationPolicy::InstantRam,
        Some("ignem") => MigrationPolicy::Ignem,
        Some("naive") => MigrationPolicy::Naive,
        Some(other) => panic!("unknown policy {other}; try dyrs/hdfs/ram/ignem/naive"),
    };
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let params = swim_params(scale);
    let mut cfg = hetero_config(policy, 42);
    let w = swim::generate(&params, 42);
    println!(
        "SWIM: {} jobs, {:.0} GB total input, policy {}, handicapped node0\n",
        w.len(),
        w.total_input_bytes() as f64 / (1u64 << 30) as f64,
        policy.name()
    );
    cfg.files = w.files;
    let r = Simulation::new(cfg, w.jobs).run();

    let mut by_bin = [(0usize, 0.0f64); 3];
    for j in &r.jobs {
        let b = match size_bin(j.input_bytes) {
            SizeBin::Small => 0,
            SizeBin::Medium => 1,
            SizeBin::Large => 2,
        };
        by_bin[b].0 += 1;
        by_bin[b].1 += j.duration.as_secs_f64();
    }
    println!("mean job duration : {:.1}s", r.mean_job_duration_secs());
    println!("mean map task     : {:.2}s", r.mean_map_task_secs());
    println!(
        "memory reads      : {:.0}%",
        r.memory_read_fraction() * 100.0
    );
    for (label, (n, sum)) in ["small", "medium", "large"].iter().zip(by_bin) {
        if n > 0 {
            println!("{label:>7} jobs ({n:>3}) : {:.1}s mean", sum / n as f64);
        }
    }
    println!("\nslowest five jobs:");
    let mut jobs = r.jobs.clone();
    jobs.sort_by_key(|j| std::cmp::Reverse(j.duration));
    for j in jobs.iter().take(5) {
        println!(
            "  {:<10} {:>7}MB  {:>7.1}s  ({:.0}% memory reads)",
            j.name,
            j.input_bytes >> 20,
            j.duration.as_secs_f64(),
            j.memory_read_fraction * 100.0
        );
    }
    println!("\n(paper Table I: HDFS 31.5s mean; DYRS +33%; Ignem -111%)");
}
