//! Run one TPC-DS-style Hive query under all four file-system
//! configurations the paper compares, on a cluster with a handicapped
//! node, and print the Fig. 4-style comparison.
//!
//! ```sh
//! cargo run --release --example hive_queries          # q15, scale 0.5
//! cargo run --release --example hive_queries q89 1.0  # choose query/scale
//! ```

use dyrs::MigrationPolicy;
use dyrs_experiments::scenarios::{hetero_config, with_workload};
use dyrs_sim::Simulation;
use dyrs_workloads::hive;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let want = args.get(1).map(|s| s.as_str()).unwrap_or("q15");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let queries = hive::queries();
    let q = queries.iter().find(|q| q.name == want).unwrap_or_else(|| {
        panic!(
            "unknown query {want}; try one of {:?}",
            queries.iter().map(|q| q.name).collect::<Vec<_>>()
        )
    });

    println!(
        "query {} — {:.1} GB cold scan, {} follow-up stage(s), scale {scale}",
        q.name,
        (q.scan_bytes as f64 * scale) / (1u64 << 30) as f64,
        q.follow_stages
    );
    println!("cluster: 7 nodes, two dd readers hammering node0\n");

    let mut hdfs_total = None;
    for policy in MigrationPolicy::paper_configs() {
        let w = hive::query_workload(q, scale, 0);
        let (cfg, jobs) = with_workload(hetero_config(policy, 42), w);
        let r = Simulation::new(cfg, jobs).run();
        let total: f64 = r.jobs.iter().map(|j| j.duration.as_secs_f64()).sum();
        let hdfs = *hdfs_total.get_or_insert(total);
        println!(
            "{:<20} {:7.1}s  normalized {:4.2}  mem-reads {:3.0}%  migrations {}",
            policy.name(),
            total,
            total / hdfs,
            r.memory_read_fraction() * 100.0,
            r.master.completed,
        );
    }
    println!("\n(paper: DYRS up to 48% faster, 36% on average; Ignem slower than HDFS)");
}
