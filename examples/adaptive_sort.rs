//! Watch DYRS adapt: a Sort job while interference alternates on/off on
//! one node every 20 seconds (the paper's Fig. 9c experiment). The slave's
//! migration-time estimate should track the interference, and the
//! migration load shift away from the node while it is slow.
//!
//! ```sh
//! cargo run --release --example adaptive_sort
//! ```

use dyrs::MigrationPolicy;
use dyrs_cluster::{InterferenceSchedule, NodeId};
use dyrs_sim::{SimConfig, Simulation};
use dyrs_workloads::sort;
use simkit::{SimDuration, SimTime};

fn main() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 42);
    cfg.interference.push(InterferenceSchedule::alternating(
        NodeId(0),
        2,
        SimDuration::from_secs(20),
        true,
    ));
    let w = sort::sort_workload(10 << 30, SimDuration::from_secs(20), 0);
    cfg.files = w.files;
    let r = Simulation::new(cfg, w.jobs).run();

    let job = &r.jobs[0];
    println!(
        "sort 10GB with 20s-alternating interference on node0: {:.1}s end-to-end, {:.0}% memory reads\n",
        job.duration.as_secs_f64(),
        job.memory_read_fraction * 100.0
    );

    println!("estimated migration time per 256MB block (node0 vs node1), sampled every 4s:");
    println!(
        "{:>6} {:>10} {:>10}  interference",
        "t(s)", "node0", "node1"
    );
    let end = r.end_time.as_secs_f64() as u64;
    for t in (0..=end).step_by(4) {
        let at = SimTime::from_secs(t);
        let e0 = r.nodes[0].estimate_series.value_at(at).unwrap_or(0.0);
        let e1 = r.nodes[1].estimate_series.value_at(at).unwrap_or(0.0);
        let on = (t / 20) % 2 == 0;
        let bar = "#".repeat((e0.min(60.0)) as usize);
        println!(
            "{t:>6} {e0:>9.1}s {e1:>9.1}s  {} {bar}",
            if on { "ON " } else { "off" }
        );
    }

    println!(
        "\nmigrations per node: {:?}",
        r.nodes
            .iter()
            .map(|n| n.slave.completed)
            .collect::<Vec<_>>()
    );
    println!("(node0 should have completed fewer migrations than its peers)");
}
