//! Beyond reproduction: use the simulator for capacity planning.
//!
//! Question a cluster operator would ask: *how many nodes do I need for
//! the SWIM-style workload to meet a mean-job-duration target, and how
//! much of the gap can DYRS close instead of buying hardware?*
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use dyrs::MigrationPolicy;
use dyrs_cluster::ClusterSpec;
use dyrs_experiments::scenarios::swim_params;
use dyrs_sim::{SimConfig, Simulation};
use dyrs_workloads::swim;

fn main() {
    let params = swim_params(0.5);
    println!(
        "SWIM-style workload: {} jobs, {} GB total input\n",
        params.jobs,
        params.total_input_bytes >> 30
    );
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "nodes", "HDFS mean(s)", "DYRS mean(s)", "DYRS gain"
    );
    for nodes in [5usize, 7, 9, 11, 14] {
        let mut results = Vec::new();
        for policy in [MigrationPolicy::Disabled, MigrationPolicy::Dyrs] {
            let mut cfg = SimConfig::paper_default(policy, 42);
            cfg.cluster = ClusterSpec::uniform(nodes);
            let w = swim::generate(&params, 42);
            cfg.files = w.files;
            let r = Simulation::new(cfg, w.jobs).run();
            results.push(r.mean_job_duration_secs());
        }
        let (hdfs, dyrs) = (results[0], results[1]);
        println!(
            "{nodes:>6} {hdfs:>14.1} {dyrs:>14.1} {:>11.0}%",
            (1.0 - dyrs / hdfs) * 100.0
        );
    }
    println!(
        "\nReading guide: if DYRS on N nodes beats plain HDFS on N+2, the\n\
         memory already in the cluster substitutes for the extra machines."
    );
}
