//! Failure drill: inject every failure the paper's §III-C discusses into
//! one run — a DYRS master restart, a slave restart, a whole-server loss
//! and a job killed without its evict call — and verify the system
//! degrades gracefully (jobs still finish; leaked buffers get scavenged).
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use dyrs::MigrationPolicy;
use dyrs_cluster::NodeId;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FailureEvent, FileSpec, SimConfig, Simulation};
use simkit::SimTime;

const BLOCK: u64 = 256 << 20;

fn main() {
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 42);
    for i in 0..4 {
        cfg.files
            .push(FileSpec::new(format!("data/f{i}"), 10 * BLOCK));
    }
    // Keep buffers tight so the kill-without-evict leak must be scavenged.
    cfg.mem_limit = Some(4 * BLOCK);
    cfg.failures = vec![
        FailureEvent::MasterRestart {
            at: SimTime::from_secs(6),
        },
        FailureEvent::SlaveRestart {
            at: SimTime::from_secs(14),
            node: NodeId(2),
        },
        FailureEvent::KillJob {
            at: SimTime::from_secs(10),
            job: JobId(1),
        },
        FailureEvent::NodeDown {
            at: SimTime::from_secs(20),
            node: NodeId(5),
        },
        FailureEvent::NodeUp {
            at: SimTime::from_secs(45),
            node: NodeId(5),
        },
    ];
    let jobs: Vec<JobSpec> = (0..4)
        .map(|i| {
            JobSpec::map_only(
                JobId(i),
                format!("job-{i}"),
                SimTime::from_secs(i * 3),
                vec![format!("data/f{i}")],
            )
        })
        .collect();

    let r = Simulation::new(cfg, jobs).run();

    println!("injected: master restart @6s, job-1 kill @10s, slave-2 restart @14s,");
    println!("          node5 down @20s, node5 back @45s\n");
    for j in &r.jobs {
        println!(
            "  {} finished in {:.1}s ({:.0}% memory reads)",
            j.name,
            j.duration.as_secs_f64(),
            j.memory_read_fraction * 100.0
        );
    }
    println!(
        "\n  failed jobs: {:?} (job_1 was killed on purpose)",
        r.failed_jobs
    );
    println!("  speculative re-executions: {}", r.speculations);
    let leaked: u64 = r
        .nodes
        .iter()
        .filter_map(|n| n.buffer_series.points().last().map(|&(_, v)| v as u64))
        .sum();
    println!(
        "  bytes still buffered at the end: {} MB\n  (the killed job never evicted; DYRS scavenges such leaks lazily,\n   whenever a slave crosses its memory-pressure threshold — §III-C3)",
        leaked >> 20
    );

    assert_eq!(r.jobs.len(), 3, "the three surviving jobs must complete");
    assert_eq!(r.failed_jobs, vec![JobId(1)]);
    println!("\nall surviving jobs completed — DYRS degraded, never broke.");
}
