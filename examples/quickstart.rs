//! Quickstart: run one MapReduce job over cold data with DYRS migration
//! and see where its reads were served from.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--trace-out <dir>` to export the run's observability data
//! (lifecycle spans, metrics, Algorithm 1 provenance, and a Chrome
//! `trace.json` loadable in Perfetto) — see `docs/OBSERVABILITY.md`.

use dyrs::MigrationPolicy;
use dyrs_dfs::JobId;
use dyrs_engine::JobSpec;
use dyrs_sim::{FileSpec, SimConfig, Simulation};
use simkit::SimTime;

const BLOCK: u64 = 256 << 20;

/// Value of `--trace-out <dir>` if present on the command line.
fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return Some(args.next().expect("--trace-out needs a directory").into());
        }
    }
    None
}

fn main() {
    // A 7-node cluster like the paper's testbed, running full DYRS.
    let mut cfg = SimConfig::paper_default(MigrationPolicy::Dyrs, 42);

    // 3.5 GB of cold input data, written with 3x replication.
    cfg.files
        .push(FileSpec::new("logs/clicks-2019-05-20", 14 * BLOCK));

    // One map-only job that scans it, submitted at t=0. The DYRS client
    // call in the job submitter fires the migration request immediately;
    // tasks launch after the platform's lead-time.
    let job = JobSpec::map_only(
        JobId(0),
        "click-scan",
        SimTime::ZERO,
        vec!["logs/clicks-2019-05-20".into()],
    );

    let result = Simulation::new(cfg, vec![job]).run();

    let j = &result.jobs[0];
    println!("job {:?} ({})", j.job, j.name);
    println!(
        "  input           : {} blocks, {} MB",
        j.map_tasks,
        j.input_bytes >> 20
    );
    println!(
        "  lead-time       : {:.1}s (used for migration)",
        j.lead_time.as_secs_f64()
    );
    println!("  map phase       : {:.1}s", j.map_phase.as_secs_f64());
    println!("  end-to-end      : {:.1}s", j.duration.as_secs_f64());
    println!("  reads from RAM  : {:.0}%", j.memory_read_fraction * 100.0);
    println!(
        "  migrations done : {} (master bound {}, missed reads {})",
        result.master.completed, result.master.bound, result.master.missed_reads
    );
    for n in &result.nodes {
        println!(
            "  {}: {} migrations, peak buffer {} MB, disk busy {:.1}s",
            n.node,
            n.slave.completed,
            n.peak_buffer_bytes >> 20,
            n.disk_busy.as_secs_f64()
        );
    }
    assert!(
        j.memory_read_fraction > 0.9,
        "lead-time should cover this input"
    );
    if let Some(dir) = trace_out_arg() {
        result
            .obs
            .write_to_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", dir.display()));
        println!(
            "\ntrace written to {} (open trace.json in https://ui.perfetto.dev)",
            dir.display()
        );
    }
    println!("\nTip: rerun with MigrationPolicy::Disabled to see the cold-read baseline.");
}
